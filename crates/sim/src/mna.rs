//! Complex Modified Nodal Analysis.
//!
//! At each analysis frequency the netlist is stamped into a complex MNA
//! system: one KCL row per non-ground node plus one branch row for the ideal
//! AC test source driving the input node. A `GMIN` leak to ground on every
//! node (exactly as production SPICE engines do) keeps the matrix
//! non-singular when capacitor-only paths block DC.

use std::sync::Arc;

use oa_analyze::{verify_structure, StructuralError};
use oa_circuit::{Element, Netlist, NodeId};
use oa_linalg::{
    factorize_in_place, solve_in_place, BatchBuffers, CMatrix, CluFactor, Complex, SparsityPattern,
    SymbolicPlan,
};

use crate::error::SimError;
use crate::plan::PlanCache;

/// Frequency points solved together per symbolic-sparse kernel pass. The
/// structure-of-arrays slabs put this many lanes contiguous in memory, so
/// the inner loops of factor/solve vectorize over the batch. Pinned to
/// the kernel's preferred width so every full chunk takes the
/// constant-trip-count specialization in `oa-linalg`.
const BATCH: usize = oa_linalg::LANES;

/// Maps a structural-verifier outcome onto the simulator's error type.
/// Port degeneracies and elaboration failures fold into [`SimError::BadElement`];
/// the two floating/singular cases keep their dedicated variants so callers
/// (the BO candidate filter, the serving layer) can tell "never solvable"
/// apart from "bad values".
fn structural_to_sim_error(err: StructuralError) -> SimError {
    match err {
        StructuralError::FloatingNode { node, detail } => SimError::FloatingNode { node, detail },
        StructuralError::StructurallySingular {
            dim,
            structural_rank,
        } => SimError::StructurallySingular {
            dim,
            structural_rank,
        },
        StructuralError::DegenerateVccs { index, detail } => SimError::BadElement {
            detail: format!("degenerate vccs (element {index}): {detail}"),
        },
        StructuralError::BadValue { detail } => SimError::BadElement { detail },
    }
}

/// Assembles and solves the MNA system of a netlist at one frequency.
///
/// The system unknowns are the non-ground node voltages followed by the
/// test-source branch current. Ground (node 0) is the reference and is
/// eliminated.
#[derive(Debug)]
pub struct MnaSystem<'a> {
    netlist: &'a Netlist,
    gmin: f64,
}

impl<'a> MnaSystem<'a> {
    /// Creates an MNA view of `netlist` with the given `GMIN` leak
    /// conductance (siemens) from every node to ground.
    pub fn new(netlist: &'a Netlist, gmin: f64) -> Self {
        MnaSystem { netlist, gmin }
    }

    /// Number of unknowns: non-ground node voltages + 1 branch current.
    pub fn dim(&self) -> usize {
        self.netlist.node_count() - 1 + 1
    }

    fn var(&self, n: NodeId) -> Option<usize> {
        if n.is_ground() {
            None
        } else {
            Some(n.0 - 1)
        }
    }

    /// Stamps the system matrix at angular frequency `omega` (rad/s).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadElement`] for non-finite or non-positive
    /// element values.
    pub fn assemble(&self, omega: f64) -> Result<CMatrix, SimError> {
        let dim = self.dim();
        let branch = dim - 1;
        let mut a = CMatrix::zeros(dim, dim);

        let stamp_admittance = |a: &mut CMatrix, p: Option<usize>, q: Option<usize>, y: Complex| {
            if let Some(i) = p {
                a[(i, i)] += y;
            }
            if let Some(j) = q {
                a[(j, j)] += y;
            }
            if let (Some(i), Some(j)) = (p, q) {
                a[(i, j)] -= y;
                a[(j, i)] -= y;
            }
        };

        for e in self.netlist.elements() {
            match *e {
                Element::Resistor { a: na, b: nb, ohms } => {
                    if !(ohms.is_finite() && ohms > 0.0) {
                        return Err(SimError::BadElement {
                            detail: format!("resistor with {ohms} ohms"),
                        });
                    }
                    let y = Complex::from_re(1.0 / ohms);
                    stamp_admittance(&mut a, self.var(na), self.var(nb), y);
                }
                Element::Capacitor {
                    a: na,
                    b: nb,
                    farads,
                } => {
                    if !(farads.is_finite() && farads >= 0.0) {
                        return Err(SimError::BadElement {
                            detail: format!("capacitor with {farads} farads"),
                        });
                    }
                    let y = Complex::new(0.0, omega * farads);
                    stamp_admittance(&mut a, self.var(na), self.var(nb), y);
                }
                Element::Vccs {
                    ctrl_p,
                    ctrl_n,
                    out_p,
                    out_n,
                    gm,
                    ft_hz,
                } => {
                    if !gm.is_finite() {
                        return Err(SimError::BadElement {
                            detail: format!("vccs with gm {gm}"),
                        });
                    }
                    if let Some(ft) = ft_hz {
                        if !(ft.is_finite() && ft > 0.0) {
                            return Err(SimError::BadElement {
                                detail: format!("vccs with bandwidth {ft} Hz"),
                            });
                        }
                    }
                    // Current gm·(v_cp − v_cn) leaves out_p and enters out_n,
                    // rolled off by the cell's single-pole bandwidth if set.
                    let g = match ft_hz {
                        Some(ft) => {
                            let f = omega / (2.0 * std::f64::consts::PI);
                            Complex::from_re(gm) / Complex::new(1.0, f / ft)
                        }
                        None => Complex::from_re(gm),
                    };
                    for (node, sign) in [(out_p, 1.0), (out_n, -1.0)] {
                        if let Some(row) = self.var(node) {
                            if let Some(cp) = self.var(ctrl_p) {
                                a[(row, cp)] += g.scale(sign);
                            }
                            if let Some(cn) = self.var(ctrl_n) {
                                a[(row, cn)] -= g.scale(sign);
                            }
                        }
                    }
                }
            }
        }

        // GMIN leak on every non-ground node.
        for i in 0..(self.netlist.node_count() - 1) {
            a[(i, i)] += Complex::from_re(self.gmin);
        }

        // Ideal test source: v(input) = 1, branch current flows into input.
        let inp = self
            .var(self.netlist.input())
            .expect("input node must not be ground");
        a[(inp, branch)] += Complex::ONE;
        a[(branch, inp)] += Complex::ONE;
        Ok(a)
    }

    /// Solves for the output-node voltage with a unit AC source at the
    /// input, i.e. the transfer function `H(jω)`.
    ///
    /// This is the naive single-point path: it re-stamps and reallocates
    /// the full system at every call. Sweeps should go through
    /// [`MnaSystem::prepare`], which stamps once and reuses buffers.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SolveFailed`] on a singular system and
    /// [`SimError::BadElement`] for bad element values.
    pub fn transfer(&self, freq_hz: f64) -> Result<Complex, SimError> {
        let omega = 2.0 * std::f64::consts::PI * freq_hz;
        let a = self.assemble(omega)?;
        let mut rhs = vec![Complex::ZERO; self.dim()];
        rhs[self.dim() - 1] = Complex::ONE; // v(input) = 1.
        let lu = CluFactor::new(&a).map_err(|source| SimError::SolveFailed { freq_hz, source })?;
        let x = lu
            .solve(&rhs)
            .map_err(|source| SimError::SolveFailed { freq_hz, source })?;
        let out = self
            .var(self.netlist.output())
            .expect("output node must not be ground");
        Ok(x[out])
    }

    /// Stamps the netlist once into its frequency-independent parts and
    /// returns a [`PreparedSweep`] that evaluates `H(jω)` at any number of
    /// frequencies without touching the netlist again.
    ///
    /// Every stamp in the MNA system is either purely real and
    /// frequency-independent (resistors, unbanded VCCS, `GMIN`, the test
    /// source's ±1 entries), scales linearly with `ω` on the imaginary
    /// axis (capacitors), or is one of the few band-limited VCCS entries
    /// `±gm/(1 + jf/f_t)`. So the matrix splits as `A(ω) = G + jωC + B(f)`
    /// with constant real `G`/`C` and a short list `B` of
    /// frequency-dependent stamps — the whole netlist walk, element
    /// validation, and all allocation happen here exactly once.
    ///
    /// On top of the split, the two source unknowns are eliminated here
    /// rather than at every frequency: the branch row pins `v(input) = 1`
    /// and the input-node KCL row only determines the (unobserved) branch
    /// current, so both can be folded away with exact ±1 pivots. Columns
    /// that multiplied the known input voltage move to the right-hand side
    /// with sign flipped. The per-point factorization then runs on a
    /// `(dim − 2)`-sized system — the same answers, a much smaller LU.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FloatingNode`] or
    /// [`SimError::StructurallySingular`] when the pre-numeric structural
    /// verifier proves the system unsolvable for every element value
    /// (disconnected node, empty KCL row/column, or a sparsity pattern
    /// with no perfect row–column matching), and [`SimError::BadElement`]
    /// for non-finite or non-positive element values (the same validation
    /// as [`MnaSystem::assemble`]).
    pub fn prepare(&self) -> Result<PreparedSweep, SimError> {
        self.prepare_with_cache(None)
    }

    /// [`MnaSystem::prepare`] with an optional [`PlanCache`] supplying the
    /// symbolic sparse-factorization plan.
    ///
    /// On top of the `G`/`C`/`B` split, this computes the sparsity pattern
    /// of the reduced system and attaches a [`oa_linalg::SymbolicPlan`]
    /// for it: a fill-reducing pivot order and elimination program that
    /// every frequency point of every sweep replays instead of running
    /// dense LU with pivot search. With a cache, structurally-identical
    /// systems (all sizings of a topology, and any other topology sharing
    /// the pattern) reuse one analyzed plan; without one, analysis runs
    /// privately here. Either way the prepared sweep falls back to the
    /// dense path per point whenever the accuracy gate rejects a solution,
    /// so results are independent of whether a cache was supplied.
    ///
    /// # Errors
    ///
    /// Exactly those of [`MnaSystem::prepare`].
    pub fn prepare_with_cache(&self, cache: Option<&PlanCache>) -> Result<PreparedSweep, SimError> {
        verify_structure(self.netlist).map_err(structural_to_sim_error)?;
        let dim = self.dim();
        let branch = dim - 1;
        let mut g = vec![0.0; dim * dim];
        let mut c = vec![0.0; dim * dim];
        let mut banded = Vec::new();

        let stamp = |m: &mut [f64], p: Option<usize>, q: Option<usize>, y: f64| {
            if let Some(i) = p {
                m[i * dim + i] += y;
            }
            if let Some(j) = q {
                m[j * dim + j] += y;
            }
            if let (Some(i), Some(j)) = (p, q) {
                m[i * dim + j] -= y;
                m[j * dim + i] -= y;
            }
        };

        for e in self.netlist.elements() {
            match *e {
                Element::Resistor { a: na, b: nb, ohms } => {
                    if !(ohms.is_finite() && ohms > 0.0) {
                        return Err(SimError::BadElement {
                            detail: format!("resistor with {ohms} ohms"),
                        });
                    }
                    stamp(&mut g, self.var(na), self.var(nb), 1.0 / ohms);
                }
                Element::Capacitor {
                    a: na,
                    b: nb,
                    farads,
                } => {
                    if !(farads.is_finite() && farads >= 0.0) {
                        return Err(SimError::BadElement {
                            detail: format!("capacitor with {farads} farads"),
                        });
                    }
                    stamp(&mut c, self.var(na), self.var(nb), farads);
                }
                Element::Vccs {
                    ctrl_p,
                    ctrl_n,
                    out_p,
                    out_n,
                    gm,
                    ft_hz,
                } => {
                    if !gm.is_finite() {
                        return Err(SimError::BadElement {
                            detail: format!("vccs with gm {gm}"),
                        });
                    }
                    if let Some(ft) = ft_hz {
                        if !(ft.is_finite() && ft > 0.0) {
                            return Err(SimError::BadElement {
                                detail: format!("vccs with bandwidth {ft} Hz"),
                            });
                        }
                    }
                    for (node, sign) in [(out_p, 1.0), (out_n, -1.0)] {
                        if let Some(row) = self.var(node) {
                            for (ctrl, ctrl_sign) in [(ctrl_p, 1.0), (ctrl_n, -1.0)] {
                                if let Some(col) = self.var(ctrl) {
                                    match ft_hz {
                                        Some(ft) => banded.push(BandedStamp {
                                            row,
                                            col,
                                            gm: gm * sign * ctrl_sign,
                                            ft_hz: ft,
                                        }),
                                        None => g[row * dim + col] += gm * sign * ctrl_sign,
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        // GMIN leak on every non-ground node.
        for i in 0..(self.netlist.node_count() - 1) {
            g[i * dim + i] += self.gmin;
        }

        // Eliminate the two source unknowns. The branch row is `v(input) =
        // 1` (pivot exactly 1), and the branch current appears only in the
        // input-node KCL row, which pivots it out exactly as well — so the
        // reduction below is the first two elimination steps of the full
        // system performed without rounding. What remains are the KCL rows
        // of the other nodes with the known `v(input) = 1` moved to the
        // right-hand side.
        let inp = self
            .var(self.netlist.input())
            .expect("input node must not be ground");
        let out = self
            .var(self.netlist.output())
            .expect("output node must not be ground");
        let m = dim - 2;
        // Reduced index of a full-system variable; `None` for the two
        // eliminated unknowns (input-node voltage and branch current).
        let keep = |j: usize| -> Option<usize> {
            if j == inp || j == branch {
                None
            } else {
                Some(j - usize::from(j > inp))
            }
        };

        let mut g_r = vec![0.0; m * m];
        let mut c_r = vec![0.0; m * m];
        let mut rhs_g = vec![0.0; m];
        let mut rhs_c = vec![0.0; m];
        for i in (0..dim).filter(|&i| i != branch) {
            if let Some(ir) = keep(i) {
                rhs_g[ir] = -g[i * dim + inp];
                rhs_c[ir] = -c[i * dim + inp];
                for j in (0..dim).filter(|&j| j != branch) {
                    if let Some(jr) = keep(j) {
                        g_r[ir * m + jr] = g[i * dim + j];
                        c_r[ir * m + jr] = c[i * dim + j];
                    }
                }
            }
        }

        let mut banded_r = Vec::new();
        let mut banded_rhs = Vec::new();
        for s in banded {
            // A stamp into the input-node row only fed the eliminated
            // branch current; one controlled by the input node sees the
            // known unit voltage and becomes a right-hand-side term.
            let Some(row) = keep(s.row) else { continue };
            match keep(s.col) {
                Some(col) => banded_r.push(BandedStamp { row, col, ..s }),
                None => banded_rhs.push(BandedStamp { row, col: 0, ..s }),
            }
        }

        let sparse = SparseState::build(m, &g_r, &c_r, &banded_r, cache);

        Ok(PreparedSweep {
            dim,
            m,
            out: keep(out),
            g: g_r,
            c: c_r,
            rhs_g,
            rhs_c,
            banded: banded_r,
            banded_rhs,
            work: CMatrix::zeros(m, m),
            perm: vec![0; m],
            rhs: vec![Complex::ZERO; m],
            y: vec![Complex::ZERO; m],
            x: vec![Complex::ZERO; m],
            sparse,
        })
    }
}

/// The symbolic-sparse half of a [`PreparedSweep`]: the shared plan, its
/// SoA numeric buffers, and the scatter maps from the `G`/`C`/`B` split
/// into pattern-entry order.
#[derive(Debug, Clone)]
struct SparseState {
    plan: Arc<SymbolicPlan>,
    buf: BatchBuffers,
    /// Row-major `i·m + j` source index in `g`/`c` per pattern entry.
    src: Vec<u32>,
    /// Pattern-entry index of each band-limited stamp (aligned with
    /// `PreparedSweep::banded`).
    banded_entry: Vec<u32>,
    /// Frequency points re-solved densely after failing the accuracy gate.
    fallbacks: u64,
}

impl SparseState {
    /// Derives the reduced-system sparsity pattern and resolves its plan,
    /// from `cache` when given, else by private analysis. `None` disables
    /// the sparse path (empty system or unanalyzable pattern) — the
    /// prepared sweep then stays on dense LU throughout.
    fn build(
        m: usize,
        g_r: &[f64],
        c_r: &[f64],
        banded_r: &[BandedStamp],
        cache: Option<&PlanCache>,
    ) -> Option<SparseState> {
        if m == 0 {
            return None;
        }
        let mut positions = Vec::new();
        for i in 0..m {
            for j in 0..m {
                if g_r[i * m + j] != 0.0 || c_r[i * m + j] != 0.0 {
                    positions.push((i, j));
                }
            }
        }
        for s in banded_r {
            positions.push((s.row, s.col));
        }
        let pattern = SparsityPattern::new(m, positions).ok()?;
        let plan = match cache {
            Some(cache) => cache.plan_for(&pattern)?,
            None => Arc::new(SymbolicPlan::analyze(&pattern).ok()?),
        };
        let src = pattern
            .entries()
            .iter()
            .map(|&(r, c)| r * m as u32 + c)
            .collect();
        let mut banded_entry = Vec::with_capacity(banded_r.len());
        for s in banded_r {
            // Present by construction (pushed into `positions` above).
            let e = pattern
                .entries()
                .binary_search(&(s.row as u32, s.col as u32))
                .ok()?;
            banded_entry.push(e as u32);
        }
        let buf = plan.buffers();
        Some(SparseState {
            plan,
            buf,
            src,
            banded_entry,
            fallbacks: 0,
        })
    }
}

/// One band-limited VCCS matrix entry `gm / (1 + j·f/f_t)` (the signed
/// `gm` already folds in the output/control orientation).
#[derive(Debug, Clone, Copy)]
struct BandedStamp {
    row: usize,
    col: usize,
    gm: f64,
    ft_hz: f64,
}

/// A netlist stamped once for repeated `H(jω)` evaluation.
///
/// Produced by [`MnaSystem::prepare`]. The two source unknowns are
/// already eliminated (exactly — both pivots are ±1), so each
/// [`PreparedSweep::transfer`] call refills a preallocated complex work
/// matrix of size `dim − 2` from the constant `G`/`C` parts in one pass,
/// adds the few band-limited stamps, then factors and solves fully in
/// place — no heap allocation per frequency point.
#[derive(Debug, Clone)]
pub struct PreparedSweep {
    /// Full MNA dimension, as reported by [`MnaSystem::dim`].
    dim: usize,
    /// Reduced system size after source elimination: `dim − 2`.
    m: usize,
    /// Reduced index of the output-node voltage; `None` when the output
    /// is the driven input node itself, where `H ≡ 1` exactly.
    out: Option<usize>,
    /// Frequency-independent real part, row-major `m × m`.
    g: Vec<f64>,
    /// Capacitive susceptance coefficients: imaginary part is `ω·c[k]`.
    c: Vec<f64>,
    /// Real right-hand side from the unit input voltage.
    rhs_g: Vec<f64>,
    /// Capacitive right-hand side: imaginary part is `ω·rhs_c[k]`.
    rhs_c: Vec<f64>,
    /// Band-limited VCCS stamps into the reduced matrix.
    banded: Vec<BandedStamp>,
    /// Band-limited VCCS stamps controlled by the input node: their value
    /// times the unit input voltage is subtracted from `rhs[row]`.
    banded_rhs: Vec<BandedStamp>,
    work: CMatrix,
    perm: Vec<usize>,
    rhs: Vec<Complex>,
    y: Vec<Complex>,
    x: Vec<Complex>,
    /// Symbolic-sparse fast path; `None` keeps every solve on dense LU.
    sparse: Option<SparseState>,
}

impl PreparedSweep {
    /// Number of unknowns in the underlying (unreduced) MNA system.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// `true` when the symbolic-sparse fast path is active for this
    /// system (a plan was analyzed or found in the supplied cache).
    pub fn sparse_enabled(&self) -> bool {
        self.sparse.is_some()
    }

    /// Number of frequency points the accuracy gate sent back to the
    /// dense partial-pivoted solver since this sweep was prepared.
    pub fn dense_fallback_count(&self) -> u64 {
        self.sparse.as_ref().map_or(0, |s| s.fallbacks)
    }

    /// The transfer function `H(jω)` at `freq_hz`, reusing all buffers.
    ///
    /// Produces the same values as [`MnaSystem::transfer`] on the same
    /// netlist to well below 1e-12 relative error (see
    /// [`PreparedSweep::sweep_into`] for the argument, which covers both
    /// the sparse fast path and the dense one).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SolveFailed`] on a singular system.
    pub fn transfer(&mut self, freq_hz: f64) -> Result<Complex, SimError> {
        if self.out.is_none() {
            return Ok(Complex::ONE);
        }
        // Below the batching threshold the SoA kernels have nothing to
        // amortize over and the per-point dense refactor wins outright
        // (it is also the gate's fallback solver), so single-point
        // probes — unity-crossing bisection, phase interpolation — take
        // the dense path directly.
        self.transfer_dense(freq_hz)
    }

    /// Evaluates `H(jω)` at every frequency of `freqs` through the
    /// symbolic-sparse batch kernels, allocating only the output vector.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SolveFailed`] when a point is singular for the
    /// dense path too.
    pub fn sweep(&mut self, freqs: &[f64]) -> Result<Vec<Complex>, SimError> {
        let mut out = vec![Complex::ZERO; freqs.len()];
        self.sweep_into(freqs, &mut out)?;
        Ok(out)
    }

    /// [`PreparedSweep::sweep`] into a caller-owned buffer.
    ///
    /// Points are processed in structure-of-arrays batches of up to 32
    /// lanes: one scatter of the `G + jωC + B(f)` split into the plan's
    /// slot storage, one replay of the elimination program, one gated
    /// solve. Lanes rejected by the accuracy gate (numerically singular or
    /// growth-dominated at that frequency) are re-solved on the dense
    /// partial-pivoted path, so the result matches [`MnaSystem::transfer`]
    /// to well below 1e-12 relative error at every point: gated lanes are
    /// refined until the correction is under `1e-13·‖x‖∞`, and fallback
    /// lanes run the exact dense algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SolveFailed`] when a point is singular for the
    /// dense path too.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != freqs.len()`.
    pub fn sweep_into(&mut self, freqs: &[f64], out: &mut [Complex]) -> Result<(), SimError> {
        assert_eq!(freqs.len(), out.len(), "sweep output length mismatch");
        if self.out.is_none() {
            out.fill(Complex::ONE);
            return Ok(());
        }
        if self.sparse.is_none() {
            for (&f, o) in freqs.iter().zip(out.iter_mut()) {
                *o = self.transfer_dense(f)?;
            }
            return Ok(());
        }
        for (fs, os) in freqs.chunks(BATCH).zip(out.chunks_mut(BATCH)) {
            self.sweep_chunk(fs, os)?;
        }
        Ok(())
    }

    /// One SoA batch: scatter, factor, gated solve, dense fallback.
    fn sweep_chunk(&mut self, freqs: &[f64], out: &mut [Complex]) -> Result<(), SimError> {
        let out_idx = match self.out {
            Some(i) => i,
            None => return Ok(()), // unreachable: sweep_into handled it
        };
        let nf = freqs.len();
        // Take the sparse state so the dense members of `self` stay
        // borrowable; restored before any fallback solve.
        let mut st = match self.sparse.take() {
            Some(st) => st,
            None => return Ok(()),
        };
        st.plan.ensure_batch(&mut st.buf, BATCH);

        // Scatter A(ω) = G + jωC + B(f) into the value slabs, frequency
        // lanes contiguous. Matches the dense path stamp-for-stamp: same
        // ω = 2πf, same rationalized band-limited form.
        const TWO_PI: f64 = 2.0 * std::f64::consts::PI;
        for (e, &src) in st.src.iter().enumerate() {
            let g = self.g[src as usize];
            let c = self.c[src as usize];
            let base = e * nf;
            st.buf.a_re[base..base + nf].fill(g);
            for (v, &f) in st.buf.a_im[base..base + nf].iter_mut().zip(freqs) {
                *v = TWO_PI * f * c;
            }
        }
        for (s, &e) in self.banded.iter().zip(&st.banded_entry) {
            let base = e as usize * nf;
            for (i, &f) in freqs.iter().enumerate() {
                let t = f / s.ft_hz;
                let g = s.gm / (1.0 + t * t);
                st.buf.a_re[base + i] += g;
                st.buf.a_im[base + i] -= g * t;
            }
        }
        for r in 0..self.m {
            let base = r * nf;
            st.buf.rhs_re[base..base + nf].fill(self.rhs_g[r]);
            for (v, &f) in st.buf.rhs_im[base..base + nf].iter_mut().zip(freqs) {
                *v = TWO_PI * f * self.rhs_c[r];
            }
        }
        for s in &self.banded_rhs {
            let base = s.row * nf;
            for (i, &f) in freqs.iter().enumerate() {
                let t = f / s.ft_hz;
                let g = s.gm / (1.0 + t * t);
                st.buf.rhs_re[base + i] -= g;
                st.buf.rhs_im[base + i] += g * t;
            }
        }

        st.plan.factor(&mut st.buf, nf);
        st.plan.solve_gated(&mut st.buf, nf);

        let mut retry = Vec::new();
        for (i, o) in out.iter_mut().enumerate() {
            if st.buf.bad[i] {
                retry.push(i);
            } else {
                *o = st.plan.solution(&st.buf, nf, out_idx, i);
            }
        }
        st.fallbacks += retry.len() as u64;
        self.sparse = Some(st);
        for i in retry {
            out[i] = self.transfer_dense(freqs[i])?;
        }
        Ok(())
    }

    /// The dense partial-pivoted single-point path: refill the complex
    /// work matrix, factorize in place, solve. Used directly when no
    /// sparse plan exists and as the per-point fallback when the sparse
    /// accuracy gate rejects a lane.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SolveFailed`] on a singular system.
    pub fn transfer_dense(&mut self, freq_hz: f64) -> Result<Complex, SimError> {
        let Some(out) = self.out else {
            // The output node is the driven input node: v(out) = 1.
            return Ok(Complex::ONE);
        };
        let omega = 2.0 * std::f64::consts::PI * freq_hz;
        let n = self.m;
        let work = self.work.as_mut_slice();
        for ((w, &g), &c) in work.iter_mut().zip(&self.g).zip(&self.c) {
            *w = Complex::new(g, omega * c);
        }
        for ((r, &g), &c) in self.rhs.iter_mut().zip(&self.rhs_g).zip(&self.rhs_c) {
            *r = Complex::new(g, omega * c);
        }
        // Matches the naive path: it derives f from omega when evaluating
        // the band-limited pole, so do the same here. The stamp is the
        // rationalized form of `gm / (1 + j·t)` with `t = f/f_t`
        // (`gm·(1 − j·t) / (1 + t²)`), which agrees with the naive
        // division to 1 ulp while avoiding a full complex division.
        let f = omega / (2.0 * std::f64::consts::PI);
        for s in &self.banded {
            let t = f / s.ft_hz;
            let g = s.gm / (1.0 + t * t);
            work[s.row * n + s.col] += Complex::new(g, -g * t);
        }
        for s in &self.banded_rhs {
            let t = f / s.ft_hz;
            let g = s.gm / (1.0 + t * t);
            self.rhs[s.row] -= Complex::new(g, -g * t);
        }
        factorize_in_place(&mut self.work, &mut self.perm)
            .map_err(|source| SimError::SolveFailed { freq_hz, source })?;
        solve_in_place(&self.work, &self.perm, &self.rhs, &mut self.y, &mut self.x)
            .map_err(|source| SimError::SolveFailed { freq_hz, source })?;
        Ok(self.x[out])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_circuit::NetlistBuilder;

    /// RC low-pass: H = 1/(1 + jωRC).
    fn rc_lowpass(r: f64, c: f64) -> Netlist {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.resistor(inp, out, r);
        b.capacitor(out, NodeId::GROUND, c);
        b.build(inp, out)
    }

    #[test]
    fn rc_lowpass_matches_analytic_response() {
        let r = 1e3;
        let c = 1e-9;
        let n = rc_lowpass(r, c);
        let sys = MnaSystem::new(&n, 1e-12);
        for freq in [1e2, 1e5, 1.0 / (2.0 * std::f64::consts::PI * r * c), 1e8] {
            let h = sys.transfer(freq).unwrap();
            let omega = 2.0 * std::f64::consts::PI * freq;
            let expected = Complex::ONE / Complex::new(1.0, omega * r * c);
            assert!(
                (h - expected).abs() < 1e-6,
                "freq {freq}: {h} vs {expected}"
            );
        }
    }

    #[test]
    fn rc_corner_is_minus_3db_and_minus_45_degrees() {
        let r = 10e3;
        let c = 100e-12;
        let n = rc_lowpass(r, c);
        let sys = MnaSystem::new(&n, 1e-15);
        let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let h = sys.transfer(fc).unwrap();
        assert!((h.abs() - 1.0 / 2f64.sqrt()).abs() < 1e-6);
        assert!((h.arg().to_degrees() + 45.0).abs() < 1e-3);
    }

    #[test]
    fn inverting_gm_stage_has_negative_dc_gain() {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.inject_gm(inp, out, -1e-3);
        b.resistor(out, NodeId::GROUND, 50e3);
        let n = b.build(inp, out);
        let sys = MnaSystem::new(&n, 1e-12);
        let h = sys.transfer(1.0).unwrap();
        // −gm·R = −50 up to the GMIN load on the output node.
        assert!((h.re + 50.0).abs() < 1e-4, "gain {h}");
        assert!(h.im.abs() < 1e-6);
    }

    #[test]
    fn voltage_divider_is_frequency_independent() {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.resistor(inp, out, 1e3);
        b.resistor(out, NodeId::GROUND, 3e3);
        let n = b.build(inp, out);
        let sys = MnaSystem::new(&n, 1e-15);
        for f in [1.0, 1e4, 1e9] {
            let h = sys.transfer(f).unwrap();
            assert!((h.re - 0.75).abs() < 1e-6);
        }
    }

    #[test]
    fn gmin_rescues_capacitor_only_node() {
        // Series C-C divider: at DC the middle node floats without GMIN.
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.capacitor(inp, out, 1e-12);
        b.capacitor(out, NodeId::GROUND, 1e-12);
        let n = b.build(inp, out);
        let sys = MnaSystem::new(&n, 1e-12);
        // Equal capacitive divider at high frequency → 0.5.
        let h = sys.transfer(1e6).unwrap();
        assert!((h.abs() - 0.5).abs() < 1e-3, "{h}");
        // And GMIN keeps the near-DC solve alive.
        assert!(sys.transfer(1e-3).unwrap().is_finite());
    }

    #[test]
    fn banded_gm_rolls_off_at_its_pole() {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.inject_gm_banded(inp, out, -1e-3, 1e6);
        b.resistor(out, NodeId::GROUND, 1e3);
        let n = b.build(inp, out);
        let sys = MnaSystem::new(&n, 1e-15);
        let dc = sys.transfer(1.0).unwrap().abs();
        let at_pole = sys.transfer(1e6).unwrap().abs();
        let decade_up = sys.transfer(1e7).unwrap().abs();
        assert!((dc - 1.0).abs() < 1e-6, "dc gain {dc}");
        assert!((at_pole - 1.0 / 2f64.sqrt()).abs() < 1e-6, "{at_pole}");
        assert!((decade_up - dc / 101f64.sqrt()).abs() < 1e-4, "{decade_up}");
    }

    #[test]
    fn bad_gm_bandwidth_is_rejected() {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.inject_gm_banded(inp, out, 1e-3, 0.0);
        let n = b.build(inp, out);
        let sys = MnaSystem::new(&n, 1e-12);
        assert!(matches!(
            sys.transfer(1.0),
            Err(SimError::BadElement { .. })
        ));
    }

    #[test]
    fn bad_resistor_is_rejected() {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.resistor(inp, out, 0.0);
        let n = b.build(inp, out);
        let sys = MnaSystem::new(&n, 1e-12);
        assert!(matches!(
            sys.transfer(1.0),
            Err(SimError::BadElement { .. })
        ));
    }

    /// Three-stage amplifier exercising every stamp kind: resistors,
    /// capacitors, plain and band-limited VCCS, a four-terminal VCCS, and
    /// a feedback (Miller) capacitor between internal nodes.
    fn three_stage_amp() -> Netlist {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let n1 = b.add_node("n1");
        let n2 = b.add_node("n2");
        let out = b.add_node("out");
        b.inject_gm_banded(inp, n1, -2e-3, 5e8);
        b.resistor(n1, NodeId::GROUND, 2e5);
        b.capacitor(n1, NodeId::GROUND, 3e-12);
        b.vccs(n1, NodeId::GROUND, NodeId::GROUND, n2, 1.5e-3);
        b.resistor(n2, NodeId::GROUND, 1e5);
        b.capacitor(n2, NodeId::GROUND, 2e-12);
        b.capacitor(n1, n2, 0.8e-12); // Miller feedback
        b.inject_gm(n2, out, -4e-3);
        b.resistor(out, NodeId::GROUND, 5e4);
        b.capacitor(out, NodeId::GROUND, 10e-12);
        b.build(inp, out)
    }

    #[test]
    fn prepared_sweep_matches_naive_assembly_across_12_decades() {
        let n = three_stage_amp();
        let sys = MnaSystem::new(&n, 1e-12);
        let mut prepared = sys.prepare().unwrap();
        // 12 decades, several points per decade, deliberately revisiting
        // frequencies out of order to prove statelessness across calls.
        let mut freqs: Vec<f64> = (0..=120)
            .map(|k| 1e-2 * 10f64.powf(k as f64 / 10.0))
            .collect();
        let shuffled: Vec<f64> = freqs.iter().rev().copied().collect();
        freqs.extend(shuffled);
        for f in freqs {
            let naive = sys.transfer(f).unwrap();
            let fast = prepared.transfer(f).unwrap();
            let rel = (fast - naive).abs() / naive.abs().max(1e-300);
            assert!(rel <= 1e-12, "f = {f}: {fast} vs {naive} (rel {rel})");
        }
    }

    #[test]
    fn prepared_sweep_rejects_bad_elements_at_prepare_time() {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.resistor(inp, out, f64::NAN);
        let n = b.build(inp, out);
        let sys = MnaSystem::new(&n, 1e-12);
        assert!(matches!(sys.prepare(), Err(SimError::BadElement { .. })));
    }

    #[test]
    fn prepare_rejects_floating_node_with_typed_error() {
        // `mid`–`mid2` form a resistive island: both nodes have stamps
        // (non-empty rows and columns) but no conducting path to ground,
        // so only the reachability check catches them.
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        let mid = b.add_node("mid");
        let mid2 = b.add_node("mid2");
        b.resistor(inp, out, 1e3);
        b.capacitor(out, NodeId::GROUND, 1e-12);
        b.resistor(mid, mid2, 1e3);
        let n = b.build(inp, out);
        match MnaSystem::new(&n, 1e-12).prepare() {
            Err(SimError::FloatingNode { node, detail }) => {
                assert_eq!(node, "mid");
                assert!(detail.contains("no conducting path to gnd"), "{detail}");
            }
            other => panic!("expected FloatingNode, got {other:?}"),
        }
    }

    #[test]
    fn prepare_rejects_control_only_node_with_typed_error() {
        // `ghost` is referenced only as a VCCS control terminal: its KCL
        // row is structurally empty (the zero-row fixture).
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        let ghost = b.add_node("ghost");
        b.resistor(inp, NodeId::GROUND, 1e3);
        b.resistor(out, NodeId::GROUND, 1e3);
        b.vccs(ghost, NodeId::GROUND, out, NodeId::GROUND, 1e-3);
        let n = b.build(inp, out);
        match MnaSystem::new(&n, 1e-12).prepare() {
            Err(SimError::FloatingNode { node, detail }) => {
                assert_eq!(node, "ghost");
                assert!(detail.contains("empty KCL row"), "{detail}");
            }
            other => panic!("expected FloatingNode, got {other:?}"),
        }
    }

    #[test]
    fn prepare_rejects_structurally_singular_gm_ring() {
        // Every node conducts and reaches ground, yet the pattern has no
        // perfect matching: only the Hall-condition layer rejects it.
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.resistor(inp, NodeId::GROUND, 1e3);
        b.vccs(inp, NodeId::GROUND, x, NodeId::GROUND, 1e-3);
        b.vccs(x, NodeId::GROUND, y, NodeId::GROUND, 1e-3);
        b.vccs(y, NodeId::GROUND, inp, NodeId::GROUND, 1e-3);
        let n = b.build(inp, x);
        match MnaSystem::new(&n, 1e-12).prepare() {
            Err(SimError::StructurallySingular {
                dim,
                structural_rank,
            }) => {
                assert_eq!(dim, 4);
                assert_eq!(structural_rank, 3);
            }
            other => panic!("expected StructurallySingular, got {other:?}"),
        }
    }

    #[test]
    fn prepared_sweep_reports_singular_systems() {
        // Zero GMIN and a floating capacitor-only node at DC.
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.capacitor(inp, out, 1e-12);
        b.capacitor(out, NodeId::GROUND, 1e-12);
        let n = b.build(inp, out);
        let sys = MnaSystem::new(&n, 0.0);
        let mut prepared = sys.prepare().unwrap();
        assert!(matches!(
            prepared.transfer(0.0),
            Err(SimError::SolveFailed { .. })
        ));
        // The same buffers stay usable after the failed factorization.
        assert!(prepared.transfer(1e6).unwrap().is_finite());
    }

    #[test]
    fn vccs_four_terminal_stamp_is_differential() {
        // Differential control: i = gm·(v_a − v_b) into out.
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let mid = b.add_node("mid");
        let out = b.add_node("out");
        // mid = in/2 via divider.
        b.resistor(inp, mid, 1e3);
        b.resistor(mid, NodeId::GROUND, 1e3);
        // i = 1m·(v_in − v_mid) = 1m·in/2 into out; out load 1k → gain 0.5.
        b.vccs(inp, mid, NodeId::GROUND, out, 1e-3);
        b.resistor(out, NodeId::GROUND, 1e3);
        let n = b.build(inp, out);
        let sys = MnaSystem::new(&n, 1e-15);
        let h = sys.transfer(1.0).unwrap();
        assert!((h.re - 0.5).abs() < 1e-6, "{h}");
    }
}
