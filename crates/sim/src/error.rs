//! Error type for the AC simulator.

use oa_linalg::LinalgError;
use std::error::Error;
use std::fmt;

/// Errors produced while analyzing a netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The MNA system could not be solved (floating node, singular matrix).
    SolveFailed {
        /// Frequency in hertz at which the solve failed.
        freq_hz: f64,
        /// Underlying linear-algebra error.
        source: LinalgError,
    },
    /// A device value would produce a meaningless stamp (zero resistance,
    /// negative capacitance, non-finite transconductance, …).
    BadElement {
        /// Description of the offending element.
        detail: String,
    },
    /// The requested frequency grid is empty or not strictly increasing.
    BadFrequencyGrid,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SolveFailed { freq_hz, source } => {
                write!(f, "mna solve failed at {freq_hz} Hz: {source}")
            }
            SimError::BadElement { detail } => write!(f, "bad element: {detail}"),
            SimError::BadFrequencyGrid => write!(f, "frequency grid is empty or not increasing"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::SolveFailed { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_failed_exposes_source() {
        let e = SimError::SolveFailed {
            freq_hz: 1.0,
            source: LinalgError::Singular { pivot: 0 },
        };
        assert!(Error::source(&e).is_some());
        assert!(e.to_string().contains("1 Hz"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
