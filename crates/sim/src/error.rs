//! Error type for the AC simulator.

use oa_linalg::LinalgError;
use std::error::Error;
use std::fmt;

/// Errors produced while analyzing a netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The MNA system could not be solved (floating node, singular matrix).
    SolveFailed {
        /// Frequency in hertz at which the solve failed.
        freq_hz: f64,
        /// Underlying linear-algebra error.
        source: LinalgError,
    },
    /// A device value would produce a meaningless stamp (zero resistance,
    /// negative capacitance, non-finite transconductance, …).
    BadElement {
        /// Description of the offending element.
        detail: String,
    },
    /// The requested frequency grid is empty or not strictly increasing.
    BadFrequencyGrid,
    /// A node is floating: its KCL row or voltage column is structurally
    /// empty, or it has no conducting path to ground. Caught by the
    /// pre-numeric structural verifier before any stamping happens.
    FloatingNode {
        /// Name of the offending node.
        node: String,
        /// Which floating condition fired.
        detail: String,
    },
    /// The MNA sparsity pattern admits no perfect row–column matching,
    /// so the determinant is identically zero for *every* assignment of
    /// element values — no numeric pivot strategy can save it.
    StructurallySingular {
        /// Full MNA dimension (node rows + source branch).
        dim: usize,
        /// Maximum bipartite matching size of the pattern.
        structural_rank: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SolveFailed { freq_hz, source } => {
                write!(f, "mna solve failed at {freq_hz} Hz: {source}")
            }
            SimError::BadElement { detail } => write!(f, "bad element: {detail}"),
            SimError::BadFrequencyGrid => write!(f, "frequency grid is empty or not increasing"),
            SimError::FloatingNode { node, detail } => {
                write!(f, "floating node '{node}': {detail}")
            }
            SimError::StructurallySingular {
                dim,
                structural_rank,
            } => write!(
                f,
                "structurally singular MNA system: structural rank {structural_rank} < dimension {dim}"
            ),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::SolveFailed { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_failed_exposes_source() {
        let e = SimError::SolveFailed {
            freq_hz: 1.0,
            source: LinalgError::Singular { pivot: 0 },
        };
        assert!(Error::source(&e).is_some());
        assert!(e.to_string().contains("1 Hz"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
