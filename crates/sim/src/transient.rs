//! Time-domain (`.TRAN`-equivalent) analysis.
//!
//! The reproduction's optimization loops only need AC analysis, but a
//! credible simulator — and a designer checking settling behavior — wants
//! the time domain too. This module integrates the linear MNA system with
//! the trapezoidal rule (the standard SPICE default): capacitors become
//! their companion models (a conductance `2C/h` in parallel with a history
//! current source), band-limited transconductors are first expanded into
//! their ideal pole macro via [`Netlist::expand_banded`], and a voltage
//! step drives the input node.

use oa_circuit::{Element, Netlist, NodeId};
use oa_linalg::{CMatrix, CluFactor, Complex};

use crate::error::SimError;

/// Options controlling a transient analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranOptions {
    /// Simulation stop time in seconds.
    pub t_stop: f64,
    /// Fixed time step in seconds.
    pub dt: f64,
    /// Step amplitude applied to the input node at `t = 0` (volts).
    pub step_v: f64,
    /// `GMIN` leak conductance in siemens.
    pub gmin: f64,
}

impl TranOptions {
    /// A step of `step_v` volts observed for `periods` time constants of
    /// `f_hz` (heuristic helper: `t_stop = periods/f_hz`, 200 points).
    pub fn for_bandwidth(f_hz: f64, periods: f64, step_v: f64) -> Self {
        let t_stop = periods / f_hz;
        TranOptions {
            t_stop,
            dt: t_stop / 200.0,
            step_v,
            gmin: 1e-12,
        }
    }
}

/// A computed step response: matched time/output-voltage samples.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResponse {
    /// Sample times in seconds, starting at 0.
    pub time: Vec<f64>,
    /// Output-node voltage at each sample.
    pub vout: Vec<f64>,
}

impl StepResponse {
    /// The final sampled output value.
    pub fn final_value(&self) -> f64 {
        *self.vout.last().expect("non-empty response")
    }

    /// Peak overshoot relative to the final value, as a fraction (0 = no
    /// overshoot). Meaningless if the response has not settled.
    pub fn overshoot(&self) -> f64 {
        let f = self.final_value();
        if f.abs() < 1e-18 {
            return 0.0;
        }
        let peak = self
            .vout
            .iter()
            .fold(0.0_f64, |m, &v| if f > 0.0 { m.max(v) } else { m.min(v) });
        ((peak - f) / f).max(0.0)
    }

    /// First time after which the output stays within `tol` (fractional)
    /// of the final value, or `None` if it never settles in-window.
    pub fn settling_time(&self, tol: f64) -> Option<f64> {
        let f = self.final_value();
        let band = tol * f.abs().max(1e-18);
        let mut settled_from = None;
        for (i, &v) in self.vout.iter().enumerate() {
            if (v - f).abs() <= band {
                settled_from.get_or_insert(i);
            } else {
                settled_from = None;
            }
        }
        settled_from.map(|i| self.time[i])
    }
}

/// Computes the response of `netlist` to a voltage step at its input.
///
/// Band-limited transconductors are expanded to ideal pole macros first,
/// so the time-domain model matches the AC model exactly.
///
/// # Errors
///
/// Returns [`SimError::BadFrequencyGrid`] for non-positive `t_stop`/`dt`
/// and [`SimError::SolveFailed`] if the companion system is singular.
///
/// # Examples
///
/// ```
/// use oa_circuit::{NetlistBuilder, NodeId};
/// use oa_sim::{step_response, TranOptions};
///
/// # fn main() -> Result<(), oa_sim::SimError> {
/// let mut b = NetlistBuilder::new();
/// let inp = b.add_node("in");
/// let out = b.add_node("out");
/// b.resistor(inp, out, 1e3);
/// b.capacitor(out, NodeId::GROUND, 1e-9);
/// let opts = TranOptions { t_stop: 10e-6, dt: 10e-9, step_v: 1.0, gmin: 1e-12 };
/// let resp = step_response(&b.build(inp, out), &opts)?;
/// assert!((resp.final_value() - 1.0).abs() < 1e-3); // RC settles to the step
/// # Ok(())
/// # }
/// ```
pub fn step_response(netlist: &Netlist, opts: &TranOptions) -> Result<StepResponse, SimError> {
    if !(opts.t_stop > 0.0 && opts.dt > 0.0 && opts.dt < opts.t_stop) {
        return Err(SimError::BadFrequencyGrid);
    }
    let expanded = netlist.expand_banded();
    let n_nodes = expanded.node_count() - 1; // ground eliminated
    let dim = n_nodes + 1; // + source branch current
    let branch = dim - 1;
    let var = |n: NodeId| -> Option<usize> {
        if n.is_ground() {
            None
        } else {
            Some(n.0 - 1)
        }
    };

    // Assemble two constant system matrices — backward Euler (G + C/h)
    // for the first step across the source discontinuity, trapezoidal
    // (G + 2C/h) for the march — using the real parts of complex matrices
    // (reusing the complex LU).
    let h = opts.dt;
    let mut a = CMatrix::zeros(dim, dim);
    let mut a_be = CMatrix::zeros(dim, dim);
    let mut caps: Vec<(Option<usize>, Option<usize>, f64)> = Vec::new();
    let stamp = |a: &mut CMatrix, p: Option<usize>, q: Option<usize>, g: f64| {
        if let Some(i) = p {
            a[(i, i)] += Complex::from_re(g);
        }
        if let Some(j) = q {
            a[(j, j)] += Complex::from_re(g);
        }
        if let (Some(i), Some(j)) = (p, q) {
            a[(i, j)] -= Complex::from_re(g);
            a[(j, i)] -= Complex::from_re(g);
        }
    };
    for e in expanded.elements() {
        match *e {
            Element::Resistor { a: na, b: nb, ohms } => {
                if !(ohms.is_finite() && ohms > 0.0) {
                    return Err(SimError::BadElement {
                        detail: format!("resistor with {ohms} ohms"),
                    });
                }
                stamp(&mut a, var(na), var(nb), 1.0 / ohms);
                stamp(&mut a_be, var(na), var(nb), 1.0 / ohms);
            }
            Element::Capacitor {
                a: na,
                b: nb,
                farads,
            } => {
                if !(farads.is_finite() && farads >= 0.0) {
                    return Err(SimError::BadElement {
                        detail: format!("capacitor with {farads} farads"),
                    });
                }
                let g = 2.0 * farads / h;
                stamp(&mut a, var(na), var(nb), g);
                stamp(&mut a_be, var(na), var(nb), g / 2.0);
                caps.push((var(na), var(nb), g));
            }
            Element::Vccs {
                ctrl_p,
                ctrl_n,
                out_p,
                out_n,
                gm,
                ft_hz,
            } => {
                debug_assert!(ft_hz.is_none(), "expand_banded removed banded cells");
                for (node, sign) in [(out_p, 1.0), (out_n, -1.0)] {
                    if let Some(row) = var(node) {
                        if let Some(cp) = var(ctrl_p) {
                            a[(row, cp)] += Complex::from_re(sign * gm);
                            a_be[(row, cp)] += Complex::from_re(sign * gm);
                        }
                        if let Some(cn) = var(ctrl_n) {
                            a[(row, cn)] -= Complex::from_re(sign * gm);
                            a_be[(row, cn)] -= Complex::from_re(sign * gm);
                        }
                    }
                }
            }
        }
    }
    for i in 0..n_nodes {
        a[(i, i)] += Complex::from_re(opts.gmin);
        a_be[(i, i)] += Complex::from_re(opts.gmin);
    }
    let inp = var(expanded.input()).expect("input node is not ground");
    let out = var(expanded.output()).expect("output node is not ground");
    for m in [&mut a, &mut a_be] {
        m[(inp, branch)] += Complex::ONE;
        m[(branch, inp)] += Complex::ONE;
    }
    let lu = CluFactor::new(&a).map_err(|source| SimError::SolveFailed {
        freq_hz: 0.0,
        source,
    })?;
    let lu_be = CluFactor::new(&a_be).map_err(|source| SimError::SolveFailed {
        freq_hz: 0.0,
        source,
    })?;

    // March: i_cap_hist carries the trapezoidal history current per cap.
    let steps = (opts.t_stop / h).ceil() as usize;
    let mut v = vec![0.0; dim]; // quiescent start (all nodes at 0)
    let mut cap_hist = vec![0.0; caps.len()]; // i_k + g·v_k per capacitor
    let mut time = Vec::with_capacity(steps + 1);
    let mut vout = Vec::with_capacity(steps + 1);
    time.push(0.0);
    vout.push(0.0);

    for k in 1..=steps {
        // The first step crosses the t = 0 source discontinuity: use
        // backward Euler there (the SPICE convention), trapezoidal after.
        let first = k == 1;
        let mut rhs = vec![Complex::ZERO; dim];
        if !first {
            for ((p, q, _g), &hist) in caps.iter().zip(&cap_hist) {
                if let Some(i) = *p {
                    rhs[i] += Complex::from_re(hist);
                }
                if let Some(j) = *q {
                    rhs[j] -= Complex::from_re(hist);
                }
            }
        }
        rhs[branch] = Complex::from_re(opts.step_v);
        let solver = if first { &lu_be } else { &lu };
        let x = solver.solve(&rhs).map_err(|source| SimError::SolveFailed {
            freq_hz: 0.0,
            source,
        })?;
        let x_re: Vec<f64> = x.iter().map(|c| c.re).collect();

        // Update capacitor histories for the trapezoidal march:
        // hist_k = i_k + g·v_k with i_k = g·(v_k − v_{k−1}) − i_{k−1}
        // (after backward Euler, i_1 = (g/2)·(v_1 − v_0)).
        for (ci, (p, q, g)) in caps.iter().enumerate() {
            let vk = p.map_or(0.0, |i| x_re[i]) - q.map_or(0.0, |j| x_re[j]);
            let vk_prev = p.map_or(0.0, |i| v[i]) - q.map_or(0.0, |j| v[j]);
            let i_k = if first {
                (g / 2.0) * (vk - vk_prev)
            } else {
                let i_prev = cap_hist[ci] - g * vk_prev;
                g * (vk - vk_prev) - i_prev
            };
            cap_hist[ci] = i_k + g * vk;
        }
        v = x_re;
        time.push(k as f64 * h);
        vout.push(v[out]);
    }
    Ok(StepResponse { time, vout })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_circuit::NetlistBuilder;

    fn rc(r: f64, c: f64) -> Netlist {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.resistor(inp, out, r);
        b.capacitor(out, NodeId::GROUND, c);
        b.build(inp, out)
    }

    #[test]
    fn rc_step_matches_analytic_exponential() {
        let r = 1e3;
        let c = 1e-9;
        let tau = r * c;
        let opts = TranOptions {
            t_stop: 5.0 * tau,
            dt: tau / 100.0,
            step_v: 1.0,
            gmin: 1e-15,
        };
        let resp = step_response(&rc(r, c), &opts).unwrap();
        for (t, v) in resp.time.iter().zip(&resp.vout) {
            let expected = 1.0 - (-t / tau).exp();
            assert!((v - expected).abs() < 2e-3, "t={t:.3e}: {v} vs {expected}");
        }
    }

    #[test]
    fn rc_settling_time_is_about_4_6_tau() {
        let tau = 1e-6;
        let opts = TranOptions {
            t_stop: 10.0 * tau,
            dt: tau / 200.0,
            step_v: 1.0,
            gmin: 1e-15,
        };
        let resp = step_response(&rc(1e3, 1e-9), &opts).unwrap();
        let ts = resp.settling_time(0.01).expect("settles");
        // 1% settling of a first-order system is at ln(100)·τ ≈ 4.6·τ.
        assert!((ts / tau - 4.6).abs() < 0.3, "ts = {ts:.3e}");
        assert!(resp.overshoot() < 1e-6, "first-order never overshoots");
    }

    #[test]
    fn inverting_amplifier_settles_to_dc_gain() {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.inject_gm(inp, out, -1e-3);
        b.resistor(out, NodeId::GROUND, 10e3);
        b.capacitor(out, NodeId::GROUND, 1e-9);
        let opts = TranOptions {
            t_stop: 100e-6,
            dt: 50e-9,
            step_v: 0.01,
            gmin: 1e-15,
        };
        let resp = step_response(&b.build(inp, out), &opts).unwrap();
        // DC gain −10 on a 10 mV step → −100 mV.
        assert!(
            (resp.final_value() + 0.1).abs() < 1e-3,
            "{}",
            resp.final_value()
        );
    }

    #[test]
    fn banded_gm_step_shows_pole_delay() {
        // A band-limited follower stage: the step response must be the
        // exponential of the cell pole, not an instant jump.
        let ft = 1e6;
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.inject_gm_banded(inp, out, 1e-3, ft);
        b.resistor(out, NodeId::GROUND, 1e3);
        let tau = 1.0 / (2.0 * std::f64::consts::PI * ft);
        let opts = TranOptions {
            t_stop: 8.0 * tau,
            dt: tau / 100.0,
            step_v: 1.0,
            gmin: 1e-15,
        };
        let resp = step_response(&b.build(inp, out), &opts).unwrap();
        // Final value = gm·R = 1; value at t = τ ≈ 63%.
        assert!((resp.final_value() - 1.0).abs() < 5e-3);
        let idx_tau = resp.time.iter().position(|&t| t >= tau).unwrap();
        assert!(
            (resp.vout[idx_tau] - 0.632).abs() < 0.02,
            "v(τ) = {}",
            resp.vout[idx_tau]
        );
    }

    #[test]
    fn degenerate_time_grid_is_rejected() {
        let n = rc(1e3, 1e-9);
        let bad = TranOptions {
            t_stop: 0.0,
            dt: 1e-9,
            step_v: 1.0,
            gmin: 1e-12,
        };
        assert!(matches!(
            step_response(&n, &bad),
            Err(SimError::BadFrequencyGrid)
        ));
    }

    #[test]
    fn two_pole_amp_overshoots() {
        // An underdamped two-pole system rings; overshoot must be detected.
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let mid = b.add_node("mid");
        let out = b.add_node("out");
        // Two cascaded stages closed by strong capacitive coupling create
        // complex poles; simpler: series RLC-like behavior via gyrator is
        // overkill — use a known-ringing configuration: negative feedback
        // around two lagging stages.
        b.inject_gm(inp, mid, 1e-3);
        b.vccs(out, NodeId::GROUND, NodeId::GROUND, mid, -8e-4); // feedback
        b.resistor(mid, NodeId::GROUND, 1e4);
        b.capacitor(mid, NodeId::GROUND, 1e-9);
        b.inject_gm(mid, out, 1e-3);
        b.resistor(out, NodeId::GROUND, 1e4);
        b.capacitor(out, NodeId::GROUND, 1e-9);
        let opts = TranOptions {
            t_stop: 3e-4,
            dt: 5e-8,
            step_v: 0.001,
            gmin: 1e-15,
        };
        let resp = step_response(&b.build(inp, out), &opts).unwrap();
        assert!(resp.overshoot() > 0.05, "overshoot {}", resp.overshoot());
        assert!(resp.settling_time(0.02).is_some());
    }
}
