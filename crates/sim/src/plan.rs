//! Shared cache of symbolic sparse-factorization plans.
//!
//! A [`oa_linalg::SymbolicPlan`] depends only on the *sparsity pattern* of
//! the reduced MNA system — not on element values, not on the frequency
//! grid, not even on which topology produced it. Analysis is therefore paid
//! once per distinct pattern and the resulting plan is shared (via `Arc`)
//! across every sweep, every sizing-BO evaluation, and every worker thread
//! touching a structurally-identical system. The cache mirrors the WL
//! feature cache in `oa-graph`: a keyed store plus hit/miss counters that
//! the serving layer surfaces through its `stats` op.
//!
//! Keying on the pattern itself (rather than a `(topology, grid)` label) is
//! strictly stronger reuse: two different topologies that elaborate to the
//! same reduced pattern — common among the paper's 30,625 variants, which
//! share the three-stage skeleton — resolve to one plan.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use oa_linalg::{SparsityPattern, SymbolicPlan};

/// Hit/miss counters of a [`PlanCache`], mirroring the WL feature-cache
/// counters so both caches read the same way in `oa-serve`'s `stats` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run symbolic analysis.
    pub misses: u64,
}

impl PlanCacheStats {
    /// Fraction of lookups served from the cache (`0.0` when empty).
    ///
    /// # Examples
    ///
    /// ```
    /// use oa_sim::PlanCacheStats;
    /// assert_eq!(PlanCacheStats::default().hit_rate(), 0.0);
    /// let s = PlanCacheStats { hits: 3, misses: 1 };
    /// assert!((s.hit_rate() - 0.75).abs() < 1e-15);
    /// ```
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe, pattern-keyed store of symbolic factorization plans.
///
/// Patterns order totally (`SparsityPattern` derives `Ord` over its sorted
/// entry list), so the store is a `BTreeMap` — deterministic iteration, no
/// hashing, no collisions. Lookups clone an `Arc`, so the lock is held only
/// for the map probe; symbolic analysis on a miss runs outside the lock.
///
/// # Examples
///
/// ```
/// use oa_circuit::{NetlistBuilder, NodeId};
/// use oa_sim::{MnaSystem, PlanCache};
///
/// let mut b = NetlistBuilder::new();
/// let inp = b.add_node("in");
/// let out = b.add_node("out");
/// b.resistor(inp, out, 1e3);
/// b.capacitor(out, NodeId::GROUND, 1e-9);
/// let netlist = b.build(inp, out);
///
/// let cache = PlanCache::new();
/// let _first = MnaSystem::new(&netlist, 1e-12).prepare_with_cache(Some(&cache)).unwrap();
/// let _second = MnaSystem::new(&netlist, 1e-12).prepare_with_cache(Some(&cache)).unwrap();
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<BTreeMap<SparsityPattern, Arc<SymbolicPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The plan for `pattern`, analyzed on first sight and shared after.
    ///
    /// Returns `None` when symbolic analysis rejects the pattern (empty
    /// system); callers treat that as "no sparse path" and stay dense.
    pub fn plan_for(&self, pattern: &SparsityPattern) -> Option<Arc<SymbolicPlan>> {
        if let Some(plan) = self.plans.lock().expect("plan cache poisoned").get(pattern) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(plan));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Analyze outside the lock; a racing duplicate analysis is
        // harmless (same deterministic plan) and the first insert wins.
        let plan = Arc::new(SymbolicPlan::analyze(pattern).ok()?);
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        Some(Arc::clone(plans.entry(pattern.clone()).or_insert(plan)))
    }

    /// Number of distinct patterns analyzed so far.
    pub fn len(&self) -> usize {
        self.plans.lock().expect("plan cache poisoned").len()
    }

    /// `true` when no pattern has been analyzed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag_pattern(n: usize) -> SparsityPattern {
        SparsityPattern::new(n, (0..n).map(|d| (d, d)).collect()).unwrap()
    }

    #[test]
    fn repeated_lookups_share_one_plan() {
        let cache = PlanCache::new();
        let p = diag_pattern(3);
        let a = cache.plan_for(&p).unwrap();
        let b = cache.plan_for(&p).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), PlanCacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_patterns_get_distinct_plans() {
        let cache = PlanCache::new();
        let a = cache.plan_for(&diag_pattern(2)).unwrap();
        let b = cache.plan_for(&diag_pattern(3)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn unanalyzable_pattern_is_not_cached() {
        let cache = PlanCache::new();
        let empty = SparsityPattern::new(0, vec![]).unwrap();
        assert!(cache.plan_for(&empty).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache = Arc::new(PlanCache::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || cache.plan_for(&diag_pattern(4)).unwrap().nslots())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 4);
        }
        assert_eq!(cache.len(), 1);
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 4);
    }
}
