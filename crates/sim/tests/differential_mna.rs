//! Differential test for the prepared MNA fast paths.
//!
//! [`MnaSystem::prepare`] splits the system into `G + jωC + B(f)`,
//! eliminates the two source unknowns with exact ±1 pivots, and reuses
//! one workspace across the sweep; on top of that sits the
//! symbolic-sparse path (fill-reducing static pivot order, SoA-batched
//! refactoring, accuracy-gated iterative refinement). All of it is
//! supposed to be algebraically invisible: on any (topology, sizing,
//! frequency) triple all three solvers — naive assemble-and-solve, the
//! prepared dense path, and the symbolic-sparse batch path — must agree
//! to near machine precision.
//!
//! 200 seeded random triples, fixed seed, no external RNG — failures
//! reproduce from the case number alone.

use oa_circuit::{
    elaborate, NetlistBuilder, NodeId, ParamSpace, Process, Topology, DESIGN_SPACE_SIZE,
};
use oa_sim::MnaSystem;

const CASES: usize = 200;
const FREQS_PER_CASE: usize = 4;
const GMIN: f64 = 1e-12;
const REL_TOL: f64 = 1e-12;

/// xorshift64* — the same generator the fault plan and chaos harness
/// use, so every suite in the repo replays from a bare u64.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Relative distance between two complex responses, scaled by the larger
/// magnitude (floored to avoid 0/0 on exact zeros).
fn rel_diff(a: oa_linalg::Complex, b: oa_linalg::Complex) -> f64 {
    let diff = ((a.re - b.re).powi(2) + (a.im - b.im).powi(2)).sqrt();
    let scale = (a.re * a.re + a.im * a.im)
        .sqrt()
        .max((b.re * b.re + b.im * b.im).sqrt())
        .max(f64::MIN_POSITIVE);
    diff / scale
}

#[test]
fn three_solver_paths_agree_on_random_triples() {
    let mut rng = Rng::new(0x0A5E_EDED_CA5C_ADE5);
    let process = Process::default();
    let mut worst_rel = 0.0f64;

    for case in 0..CASES {
        let index = (rng.next() as usize) % DESIGN_SPACE_SIZE;
        let topology = Topology::from_index(index).expect("in range");
        let space = ParamSpace::for_topology(&topology);

        // Sizing point in the safe interior of the unit cube, away from
        // the clamped edges where decode saturates.
        let x: Vec<f64> = (0..space.dim()).map(|_| 0.05 + 0.9 * rng.unit()).collect();
        let values = space
            .decode(&x)
            .unwrap_or_else(|e| panic!("case {case}: decode failed: {e}"));
        let netlist = elaborate(&topology, &values, &process, 10e-12)
            .unwrap_or_else(|e| panic!("case {case}: elaborate failed: {e}"));

        let mna = MnaSystem::new(&netlist, GMIN);
        let mut prepared = mna
            .prepare()
            .unwrap_or_else(|e| panic!("case {case} (topology {index}): prepare failed: {e}"));
        assert!(
            prepared.sparse_enabled(),
            "case {case} (topology {index}): expected a symbolic plan"
        );

        // Log-uniform over 1 Hz .. 10 GHz — the band every AC sweep in
        // the repo lives in. Solved as one batch so the SoA lanes of the
        // symbolic path are exercised alongside the scalar paths.
        let freqs: Vec<f64> = (0..FREQS_PER_CASE)
            .map(|_| 10f64.powf(10.0 * rng.unit()))
            .collect();
        let symbolic = prepared
            .sweep(&freqs)
            .unwrap_or_else(|e| panic!("case {case}: symbolic sweep failed: {e}"));

        for (fi, &freq_hz) in freqs.iter().enumerate() {
            let naive = mna
                .transfer(freq_hz)
                .unwrap_or_else(|e| panic!("case {case}.{fi}: naive transfer failed: {e}"));
            let dense = prepared
                .transfer_dense(freq_hz)
                .unwrap_or_else(|e| panic!("case {case}.{fi}: dense transfer failed: {e}"));
            let sparse = symbolic[fi];

            for (label, a, b) in [
                ("naive vs dense", naive, dense),
                ("naive vs symbolic", naive, sparse),
                ("dense vs symbolic", dense, sparse),
            ] {
                let rel = rel_diff(a, b);
                worst_rel = worst_rel.max(rel);
                assert!(
                    rel <= REL_TOL,
                    "case {case}.{fi} (topology {index}, f = {freq_hz:.3e} Hz): \
                     {label} deviates by {rel:.3e} relative \
                     ({:.17e}+{:.17e}j vs {:.17e}+{:.17e}j)",
                    a.re,
                    a.im,
                    b.re,
                    b.im,
                );
            }
        }
    }

    assert!(
        worst_rel.is_finite(),
        "worst relative deviation must be finite, got {worst_rel}"
    );
}

#[test]
fn degenerate_pattern_falls_back_to_dense() {
    // A structurally-sound topology whose symbolic pivot order hits an
    // exact numeric zero: node `a`'s diagonal conductance is cancelled by
    // a self-referencing VCCS (gm = −(g1 + g2)) and no capacitor touches
    // the node, so with GMIN = 0 the reduced matrix is
    //   [[0, −g2], [−g2, g2 + g3]]
    // — solvable by row exchange (det = −g2²), provably full structural
    // rank, but fatal for any static diagonal pivot order. The accuracy
    // gate must reject every point and the dense partial-pivoted fallback
    // must deliver the answers.
    // Exact binary fractions so the diagonal cancellation is bit-exact
    // (resistor stamps round-trip through 1/r without rounding).
    let g1 = 1.0 / 1024.0;
    let g2 = 1.0 / 2048.0;
    let g3 = 1.0 / 4096.0;
    let mut b = NetlistBuilder::new();
    let inp = b.add_node("in");
    let a = b.add_node("a");
    let out = b.add_node("out");
    b.resistor(inp, a, 1.0 / g1);
    b.resistor(a, out, 1.0 / g2);
    b.resistor(out, NodeId::GROUND, 1.0 / g3);
    b.vccs(a, NodeId::GROUND, NodeId::GROUND, a, g1 + g2); // cancels diag(a)
    let netlist = b.build(inp, out);

    let mna = MnaSystem::new(&netlist, 0.0);
    let mut prepared = mna.prepare().expect("structurally sound");
    assert!(prepared.sparse_enabled(), "plan must exist for the pattern");

    let freqs: Vec<f64> = (0..8).map(|k| 10f64.powi(k)).collect();
    let swept = prepared.sweep(&freqs).expect("dense fallback must solve");
    assert_eq!(
        prepared.dense_fallback_count(),
        freqs.len() as u64,
        "every point must have been re-solved densely"
    );
    for (i, &f) in freqs.iter().enumerate() {
        let naive = mna.transfer(f).unwrap();
        assert!(swept[i].is_finite(), "f = {f}");
        let rel = rel_diff(naive, swept[i]);
        assert!(rel <= REL_TOL, "f = {f}: fallback deviates by {rel:.3e}");
    }
}

#[test]
fn prepared_sweep_is_deterministic_across_instances() {
    // Two independently prepared sweeps over the same netlist must give
    // bit-identical answers — the workspace reuse must not leak state.
    let topology = Topology::bare_cascade();
    let space = ParamSpace::for_topology(&topology);
    let values = space.nominal();
    let netlist = elaborate(&topology, &values, &Process::default(), 10e-12).unwrap();
    let mna = MnaSystem::new(&netlist, GMIN);

    let mut a = mna.prepare().unwrap();
    let mut b = mna.prepare().unwrap();
    for decade in 0..=10 {
        let f = 10f64.powi(decade);
        // Evaluate `a` twice to exercise workspace reuse at one point.
        let first = a.transfer(f).unwrap();
        let again = a.transfer(f).unwrap();
        let fresh = b.transfer(f).unwrap();
        assert!(first.re == again.re && first.im == again.im, "f = {f}");
        assert!(first.re == fresh.re && first.im == fresh.im, "f = {f}");
    }
}
