//! Differential test for the prepared MNA fast path.
//!
//! [`MnaSystem::prepare`] splits the system into `G + jωC + B(f)`,
//! eliminates the two source unknowns with exact ±1 pivots, and reuses
//! one workspace across the sweep. All of that is supposed to be
//! algebraically invisible: on any (topology, sizing, frequency) triple
//! the prepared path must reproduce the naive assemble-and-solve
//! transfer function to near machine precision.
//!
//! 200 seeded random triples, fixed seed, no external RNG — failures
//! reproduce from the case number alone.

use oa_circuit::{elaborate, ParamSpace, Process, Topology, DESIGN_SPACE_SIZE};
use oa_sim::MnaSystem;

const CASES: usize = 200;
const FREQS_PER_CASE: usize = 4;
const GMIN: f64 = 1e-12;
const REL_TOL: f64 = 1e-12;

/// xorshift64* — the same generator the fault plan and chaos harness
/// use, so every suite in the repo replays from a bare u64.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[test]
fn prepared_sweep_matches_naive_mna_on_random_triples() {
    let mut rng = Rng::new(0x0A5E_EDED_CA5C_ADE5);
    let process = Process::default();
    let mut worst_rel = 0.0f64;

    for case in 0..CASES {
        let index = (rng.next() as usize) % DESIGN_SPACE_SIZE;
        let topology = Topology::from_index(index).expect("in range");
        let space = ParamSpace::for_topology(&topology);

        // Sizing point in the safe interior of the unit cube, away from
        // the clamped edges where decode saturates.
        let x: Vec<f64> = (0..space.dim()).map(|_| 0.05 + 0.9 * rng.unit()).collect();
        let values = space
            .decode(&x)
            .unwrap_or_else(|e| panic!("case {case}: decode failed: {e}"));
        let netlist = elaborate(&topology, &values, &process, 10e-12)
            .unwrap_or_else(|e| panic!("case {case}: elaborate failed: {e}"));

        let mna = MnaSystem::new(&netlist, GMIN);
        let mut prepared = mna
            .prepare()
            .unwrap_or_else(|e| panic!("case {case} (topology {index}): prepare failed: {e}"));

        for fi in 0..FREQS_PER_CASE {
            // Log-uniform over 1 Hz .. 10 GHz — the band every AC sweep
            // in the repo lives in.
            let freq_hz = 10f64.powf(10.0 * rng.unit());
            let naive = mna
                .transfer(freq_hz)
                .unwrap_or_else(|e| panic!("case {case}.{fi}: naive transfer failed: {e}"));
            let fast = prepared
                .transfer(freq_hz)
                .unwrap_or_else(|e| panic!("case {case}.{fi}: prepared transfer failed: {e}"));

            let diff = ((naive.re - fast.re).powi(2) + (naive.im - fast.im).powi(2)).sqrt();
            let scale = (naive.re * naive.re + naive.im * naive.im)
                .sqrt()
                .max((fast.re * fast.re + fast.im * fast.im).sqrt())
                .max(f64::MIN_POSITIVE);
            let rel = diff / scale;
            worst_rel = worst_rel.max(rel);
            assert!(
                rel <= REL_TOL,
                "case {case}.{fi} (topology {index}, f = {freq_hz:.3e} Hz): \
                 prepared path deviates from naive MNA by {rel:.3e} relative \
                 (naive = {:.17e}+{:.17e}j, prepared = {:.17e}+{:.17e}j)",
                naive.re,
                naive.im,
                fast.re,
                fast.im,
            );
        }
    }

    assert!(
        worst_rel.is_finite(),
        "worst relative deviation must be finite, got {worst_rel}"
    );
}

#[test]
fn prepared_sweep_is_deterministic_across_instances() {
    // Two independently prepared sweeps over the same netlist must give
    // bit-identical answers — the workspace reuse must not leak state.
    let topology = Topology::bare_cascade();
    let space = ParamSpace::for_topology(&topology);
    let values = space.nominal();
    let netlist = elaborate(&topology, &values, &Process::default(), 10e-12).unwrap();
    let mna = MnaSystem::new(&netlist, GMIN);

    let mut a = mna.prepare().unwrap();
    let mut b = mna.prepare().unwrap();
    for decade in 0..=10 {
        let f = 10f64.powi(decade);
        // Evaluate `a` twice to exercise workspace reuse at one point.
        let first = a.transfer(f).unwrap();
        let again = a.transfer(f).unwrap();
        let fresh = b.transfer(f).unwrap();
        assert!(first.re == again.re && first.im == again.im, "f = {f}");
        assert!(first.re == fresh.re && first.im == fresh.im, "f = {f}");
    }
}
