//! Gaussian-process surrogate models for the INTO-OA reproduction.
//!
//! Two surrogates are provided:
//!
//! * [`GpRegressor`] — squared-exponential GP on the unit cube, used by the
//!   continuous **sizing** optimizer (the inner loop of Section II-A).
//! * [`WlGp`] — the paper's WL kernel-based GP over circuit graphs
//!   (Section III-B), with posterior mean/variance (Eq. 3–4) and the
//!   analytic feature gradient (Eq. 5) that drives interpretability and
//!   topology refinement.
//!
//! Hyperparameters (lengthscale/noise for the RBF model; WL iteration count
//! `h`, signal and noise variance for the WL model) are selected by maximum
//! log marginal likelihood over small grids, as the paper prescribes for
//! `h`.
//!
//! # Examples
//!
//! ```
//! use oa_gp::GpRegressor;
//!
//! # fn main() -> Result<(), oa_gp::GpError> {
//! let x: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 / 5.0]).collect();
//! let y: Vec<f64> = x.iter().map(|p| p[0] * 2.0).collect();
//! let gp = GpRegressor::fit(x, y)?;
//! let (mean, _var) = gp.predict(&[0.25])?;
//! assert!((mean - 0.5).abs() < 0.1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod rbf;
mod train;
mod wlgp;

pub use error::GpError;
pub use rbf::{GpRegressor, RbfKernel};
pub use train::{fit_gram, FittedGram, TargetScaler};
pub use wlgp::{WlGp, WlGpHyperparams};
