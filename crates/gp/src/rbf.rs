//! A squared-exponential GP regressor on the unit cube, used by the
//! continuous sizing optimizer (Section II-A / \[1\] of the paper).

use std::sync::Arc;

use oa_linalg::Matrix;

use crate::error::GpError;
use crate::train::{fit_gram, FittedGram, TargetScaler};

/// Isotropic squared-exponential (RBF) kernel
/// `k(a, b) = σ_f² · exp(−‖a−b‖² / (2ℓ²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbfKernel {
    /// Lengthscale `ℓ` (inputs live in `[0,1]^d`).
    pub lengthscale: f64,
    /// Signal variance `σ_f²`.
    pub signal_var: f64,
}

impl RbfKernel {
    /// Evaluates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the inputs have different lengths.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        // lint: allow(panic, documented contract; fit validates every row against dim and predict rejects mismatched inputs before calling)
        assert_eq!(a.len(), b.len(), "kernel input dimension mismatch");
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        self.signal_var * (-d2 / (2.0 * self.lengthscale * self.lengthscale)).exp()
    }
}

/// Gaussian-process regression with an RBF kernel and grid-search
/// hyperparameter selection by maximum marginal likelihood.
///
/// # Examples
///
/// ```
/// use oa_gp::GpRegressor;
///
/// # fn main() -> Result<(), oa_gp::GpError> {
/// let x: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
/// let y: Vec<f64> = x.iter().map(|p| (4.0 * p[0]).sin()).collect();
/// let gp = GpRegressor::fit(x, y)?;
/// let (mean, var) = gp.predict(&[0.5])?;
/// assert!((mean - (2.0f64).sin()).abs() < 0.1);
/// assert!(var >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GpRegressor {
    /// Shared training inputs: several GPs over the same design matrix
    /// (objective + one per constraint) hold one copy between them.
    x: Arc<Vec<Vec<f64>>>,
    kernel: RbfKernel,
    noise_var: f64,
    scaler: TargetScaler,
    fitted: FittedGram,
}

impl GpRegressor {
    /// Default lengthscale grid for unit-cube inputs.
    const LENGTHSCALES: [f64; 5] = [0.05, 0.1, 0.2, 0.5, 1.0];
    /// Default noise grid.
    const NOISES: [f64; 3] = [1e-6, 1e-4, 1e-2];

    /// Fits the GP, selecting lengthscale and noise by maximum log marginal
    /// likelihood over a small grid (targets are z-score normalized and
    /// `σ_f² = 1` is fixed, the standard parameterization once targets are
    /// normalized).
    ///
    /// # Errors
    ///
    /// Returns [`GpError::BadTrainingSet`] for empty or mismatched data,
    /// [`GpError::NonFiniteTarget`] for NaN/∞ targets, and
    /// [`GpError::GramNotPd`] if no hyperparameter combination factorizes.
    pub fn fit(x: Vec<Vec<f64>>, y: Vec<f64>) -> Result<Self, GpError> {
        Self::fit_shared(Arc::new(x), y)
    }

    /// Like [`GpRegressor::fit`], but borrows the design matrix through an
    /// [`Arc`] so that several GPs trained on the same inputs (objective
    /// plus constraints) share one copy instead of cloning it per model.
    ///
    /// # Errors
    ///
    /// Same as [`GpRegressor::fit`].
    pub fn fit_shared(x: Arc<Vec<Vec<f64>>>, y: Vec<f64>) -> Result<Self, GpError> {
        if x.is_empty() || x.len() != y.len() {
            return Err(GpError::BadTrainingSet {
                inputs: x.len(),
                targets: y.len(),
            });
        }
        // lint: allow(panic, x is non-empty by the BadTrainingSet return above)
        let dim = x[0].len();
        for xi in x.iter() {
            if xi.len() != dim {
                return Err(GpError::DimensionMismatch {
                    expected: dim,
                    found: xi.len(),
                });
            }
        }
        let scaler = TargetScaler::fit(&y)?;
        let y_norm: Vec<f64> = y.iter().map(|&v| scaler.normalize(v)).collect();

        let mut best: Option<(RbfKernel, f64, FittedGram)> = None;
        for &ls in &Self::LENGTHSCALES {
            let kernel = RbfKernel {
                lengthscale: ls,
                signal_var: 1.0,
            };
            // lint: allow(panic, Matrix::from_fn passes i and j below x.len())
            let k = Matrix::from_fn(x.len(), x.len(), |i, j| kernel.eval(&x[i], &x[j]));
            for &noise in &Self::NOISES {
                match fit_gram(&k, noise, &y_norm) {
                    Ok(f) => {
                        if best.as_ref().is_none_or(|(_, _, b)| f.lml > b.lml) {
                            best = Some((kernel, noise, f));
                        }
                    }
                    Err(_) => continue,
                }
            }
        }
        let (kernel, noise_var, fitted) = best.ok_or(GpError::GramNotPd {
            source: oa_linalg::LinalgError::NotPositiveDefinite { pivot: 0 },
        })?;
        Ok(GpRegressor {
            x,
            kernel,
            noise_var,
            scaler,
            fitted,
        })
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Returns `true` if the training set is empty (never true for a fitted
    /// model; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The selected kernel hyperparameters.
    pub fn kernel(&self) -> RbfKernel {
        self.kernel
    }

    /// The selected noise variance.
    pub fn noise_var(&self) -> f64 {
        self.noise_var
    }

    /// Posterior mean and (non-negative, de-normalized) variance at `x`.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::DimensionMismatch`] on a wrong input dimension.
    pub fn predict(&self, x: &[f64]) -> Result<(f64, f64), GpError> {
        // lint: allow(panic, fit rejects an empty training set, so self.x is non-empty by construction)
        let dim = self.x[0].len();
        if x.len() != dim {
            return Err(GpError::DimensionMismatch {
                expected: dim,
                found: x.len(),
            });
        }
        let k_star: Vec<f64> = self.x.iter().map(|xi| self.kernel.eval(xi, x)).collect();
        let mean_norm: f64 = k_star
            .iter()
            .zip(&self.fitted.alpha)
            .map(|(k, a)| k * a)
            .sum();
        // var = k(x,x) − k*ᵀ (K+σ²I)⁻¹ k*, via the triangular solve.
        let v = self
            .fitted
            .chol
            .solve_lower(&k_star)
            .map_err(|source| GpError::GramNotPd { source })?;
        let explained: f64 = v.iter().map(|t| t * t).sum();
        let var_norm = (self.kernel.eval(x, x) - explained).max(0.0);
        Ok((
            self.scaler.denormalize(mean_norm),
            self.scaler.denormalize_var(var_norm),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_training_points() {
        let x = grid1d(6);
        let y: Vec<f64> = x.iter().map(|p| p[0] * p[0]).collect();
        let gp = GpRegressor::fit(x.clone(), y.clone()).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            let (m, _) = gp.predict(xi).unwrap();
            assert!((m - yi).abs() < 0.05, "pred {m} vs {yi}");
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let x = grid1d(5);
        let y = vec![0.0, 0.2, 0.1, -0.1, 0.3];
        let gp = GpRegressor::fit(x, y).unwrap();
        let (_, var_on) = gp.predict(&[0.5]).unwrap();
        // Far outside [0,1] the prediction reverts to the prior.
        let (_, var_off) = gp.predict(&[3.0]).unwrap();
        assert!(var_off > var_on);
    }

    #[test]
    fn mean_reverts_to_prior_far_away() {
        let x = grid1d(5);
        let y = vec![10.0, 11.0, 9.5, 10.5, 10.0];
        let gp = GpRegressor::fit(x, y.clone()).unwrap();
        let (m, _) = gp.predict(&[5.0]).unwrap();
        let y_mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((m - y_mean).abs() < 0.5, "far-field mean {m}");
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(GpRegressor::fit(vec![], vec![]).is_err());
        assert!(GpRegressor::fit(vec![vec![0.0]], vec![1.0, 2.0]).is_err());
        assert!(GpRegressor::fit(vec![vec![0.0], vec![0.0, 1.0]], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn rejects_wrong_prediction_dimension() {
        let gp = GpRegressor::fit(grid1d(4), vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        assert!(matches!(
            gp.predict(&[0.1, 0.2]),
            Err(GpError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_inputs_do_not_crash() {
        let x = vec![vec![0.5], vec![0.5], vec![0.7]];
        let y = vec![1.0, 1.1, 2.0];
        let gp = GpRegressor::fit(x, y).unwrap();
        let (m, v) = gp.predict(&[0.5]).unwrap();
        assert!(m.is_finite() && v.is_finite());
    }

    #[test]
    fn fit_shared_matches_fit_and_shares_storage() {
        let x = grid1d(6);
        let y: Vec<f64> = x.iter().map(|p| (3.0 * p[0]).cos()).collect();
        let owned = GpRegressor::fit(x.clone(), y.clone()).unwrap();
        let shared_x = Arc::new(x);
        let obj = GpRegressor::fit_shared(shared_x.clone(), y.clone()).unwrap();
        let con =
            GpRegressor::fit_shared(shared_x.clone(), y.iter().map(|v| -v).collect()).unwrap();
        // Same predictions as the by-value path...
        for q in [[0.1], [0.55], [0.9]] {
            let (a, va) = owned.predict(&q).unwrap();
            let (b, vb) = obj.predict(&q).unwrap();
            assert_eq!(a, b);
            assert_eq!(va, vb);
        }
        // ...and both models point at the one design matrix.
        assert!(Arc::ptr_eq(&obj.x, &shared_x));
        assert!(Arc::ptr_eq(&con.x, &shared_x));
    }

    #[test]
    fn kernel_peaks_at_zero_distance() {
        let k = RbfKernel {
            lengthscale: 0.3,
            signal_var: 2.0,
        };
        assert_eq!(k.eval(&[0.2, 0.4], &[0.2, 0.4]), 2.0);
        assert!(k.eval(&[0.0], &[1.0]) < 2.0);
    }
}
