//! The WL kernel-based Gaussian process surrogate (WL-GP) of Section III-B,
//! including the analytic feature gradient of Eq. 5 that powers the
//! interpretability analysis.

use std::sync::Arc;

use oa_graph::WlFeatures;
use oa_linalg::Matrix;

use crate::error::GpError;
use crate::train::{fit_gram, FittedGram, TargetScaler};

/// Hyperparameters of a fitted WL-GP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WlGpHyperparams {
    /// Number of WL iterations `h` selected by maximum likelihood.
    pub h: usize,
    /// Signal variance `σ_f²` (applied to the scale-normalized kernel).
    pub signal_var: f64,
    /// Observation noise variance `σ_n²`.
    pub noise_var: f64,
}

/// Gaussian process over circuit graphs with the WL kernel of Eq. 2.
///
/// The Gram matrix is `K_ij = σ_f²·⟨φ(h)(G_i), φ(h)(G_j)⟩ / s + σ_n²·δ_ij`
/// where `s` is the mean self-similarity of the training graphs (a pure
/// scale normalization that keeps the likelihood grid well-conditioned; the
/// paper's raw inner-product kernel is recovered by folding `σ_f²/s` into the
/// signal variance).
///
/// # Examples
///
/// ```
/// use oa_circuit::Topology;
/// use oa_graph::{CircuitGraph, WlFeaturizer};
/// use oa_gp::WlGp;
///
/// # fn main() -> Result<(), oa_gp::GpError> {
/// let mut wl = WlFeaturizer::new();
/// let feats: Vec<_> = (0..8)
///     .map(|i| {
///         let t = Topology::from_index(i * 1000).expect("in range");
///         wl.featurize(&CircuitGraph::from_topology(&t), 3)
///     })
///     .collect();
/// let y: Vec<f64> = (0..8).map(|i| i as f64).collect();
/// let gp = WlGp::fit(feats.clone(), y)?;
/// let (mean, var) = gp.predict(&feats[0])?;
/// assert!(mean.is_finite() && var >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WlGp {
    /// Shared training features: the objective GP and the per-constraint
    /// GPs of one BO iteration hold one copy between them.
    feats: Arc<Vec<WlFeatures>>,
    hyper: WlGpHyperparams,
    scale: f64,
    scaler: TargetScaler,
    fitted: FittedGram,
}

impl WlGp {
    /// Signal-variance grid.
    const SIGNALS: [f64; 3] = [0.5, 1.0, 2.0];
    /// Noise grid. The upper entries matter: the outer-loop targets (the
    /// best FoM a noisy sizing run found for a topology) carry substantial
    /// observation noise, and a grid capped at small noise would force the
    /// GP to interpolate that noise instead of admitting it.
    const NOISES: [f64; 5] = [1e-6, 1e-4, 1e-2, 1e-1, 0.5];

    /// Fits a WL-GP, selecting `h`, `σ_f²` and `σ_n²` by maximum log
    /// marginal likelihood. `h` ranges over `0..=h_cap` where `h_cap` is the
    /// smallest number of levels extracted across the training features
    /// (the paper uses `h ≤ 6`).
    ///
    /// # Errors
    ///
    /// Returns [`GpError::BadTrainingSet`] for empty/mismatched data,
    /// [`GpError::NonFiniteTarget`] for NaN/∞ targets, and
    /// [`GpError::GramNotPd`] if no hyperparameter combination factorizes.
    pub fn fit(feats: Vec<WlFeatures>, y: Vec<f64>) -> Result<Self, GpError> {
        Self::fit_shared(Arc::new(feats), y)
    }

    /// Like [`WlGp::fit`], but borrows the training features through an
    /// [`Arc`] so that several GPs trained on the same graphs (objective
    /// plus constraints, or one per interpretability metric) share one
    /// copy instead of cloning the feature vectors per model.
    ///
    /// # Errors
    ///
    /// Same as [`WlGp::fit`].
    pub fn fit_shared(feats: Arc<Vec<WlFeatures>>, y: Vec<f64>) -> Result<Self, GpError> {
        if feats.is_empty() || feats.len() != y.len() {
            return Err(GpError::BadTrainingSet {
                inputs: feats.len(),
                targets: y.len(),
            });
        }
        let scaler = TargetScaler::fit(&y)?;
        let y_norm: Vec<f64> = y.iter().map(|&v| scaler.normalize(v)).collect();
        let h_cap = feats
            .iter()
            .map(WlFeatures::max_h)
            .min()
            // lint: allow(panic, feats is non-empty by the BadTrainingSet return above)
            .expect("non-empty");

        let n = feats.len();
        let mut best: Option<(WlGpHyperparams, f64, FittedGram)> = None;
        for h in 0..=h_cap {
            // lint: allow(panic, Matrix::from_fn passes i and j below n = feats.len())
            let raw = Matrix::from_fn(n, n, |i, j| feats[i].kernel(&feats[j], h));
            // lint: allow(panic, i < n and the Gram matrix is n-by-n)
            let scale = (0..n).map(|i| raw[(i, i)]).sum::<f64>() / n as f64;
            let scale = if scale > 0.0 { scale } else { 1.0 };
            for &sig in &Self::SIGNALS {
                // lint: allow(panic, i and j are below n and raw is n-by-n)
                let k = Matrix::from_fn(n, n, |i, j| sig * raw[(i, j)] / scale);
                for &noise in &Self::NOISES {
                    if let Ok(f) = fit_gram(&k, noise, &y_norm) {
                        if best.as_ref().is_none_or(|(_, _, b)| f.lml > b.lml) {
                            best = Some((
                                WlGpHyperparams {
                                    h,
                                    signal_var: sig,
                                    noise_var: noise,
                                },
                                scale,
                                f,
                            ));
                        }
                    }
                }
            }
        }
        let (hyper, scale, fitted) = best.ok_or(GpError::GramNotPd {
            source: oa_linalg::LinalgError::NotPositiveDefinite { pivot: 0 },
        })?;
        Ok(WlGp {
            feats,
            hyper,
            scale,
            scaler,
            fitted,
        })
    }

    /// Number of training graphs.
    pub fn len(&self) -> usize {
        self.feats.len()
    }

    /// Returns `true` if the training set is empty (never true for a fitted
    /// model; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.feats.is_empty()
    }

    /// The selected hyperparameters.
    pub fn hyperparams(&self) -> WlGpHyperparams {
        self.hyper
    }

    /// Log marginal likelihood of the selected fit — the model-selection
    /// score that chose `h`, `σ_f²` and `σ_n²`. Two models trained on
    /// the same data select the same fit, so equal `lml` is a cheap
    /// necessary condition for posterior equality (the warm-start
    /// differential tests assert it alongside the posterior itself).
    pub fn lml(&self) -> f64 {
        self.fitted.lml
    }

    fn kernel_to_training(&self, f: &WlFeatures) -> Vec<f64> {
        self.feats
            .iter()
            .map(|fi| self.hyper.signal_var * fi.kernel(f, self.hyper.h) / self.scale)
            .collect()
    }

    /// Posterior mean and variance (Eq. 3 and 4) for a new graph's
    /// features.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::DimensionMismatch`] if `f` was extracted with
    /// fewer WL levels than the selected `h`.
    pub fn predict(&self, f: &WlFeatures) -> Result<(f64, f64), GpError> {
        if f.max_h() < self.hyper.h {
            return Err(GpError::DimensionMismatch {
                expected: self.hyper.h,
                found: f.max_h(),
            });
        }
        let k_star = self.kernel_to_training(f);
        let mean_norm: f64 = k_star
            .iter()
            .zip(&self.fitted.alpha)
            .map(|(k, a)| k * a)
            .sum();
        let v = self
            .fitted
            .chol
            .solve_lower(&k_star)
            .map_err(|source| GpError::GramNotPd { source })?;
        let explained: f64 = v.iter().map(|t| t * t).sum();
        let prior = self.hyper.signal_var * f.kernel(f, self.hyper.h) / self.scale;
        let var_norm = (prior - explained).max(0.0);
        Ok((
            self.scaler.denormalize(mean_norm),
            self.scaler.denormalize_var(var_norm),
        ))
    }

    /// The expected derivative of the (raw-scale) posterior mean with
    /// respect to the count of WL feature `feature_id` (Eq. 5):
    ///
    /// `∂μ/∂φ_j = Σ_i φ_i[j]·[K⁻¹ y]_i`
    ///
    /// scaled back to raw target units. Because the WL kernel is linear in
    /// the feature vector, the derivative is independent of the query graph.
    ///
    /// Returns `0` if the feature never occurs in the training set.
    pub fn feature_gradient(&self, feature_id: u32) -> f64 {
        let coeff = self.hyper.signal_var / self.scale;
        let grad_norm: f64 = self
            .feats
            .iter()
            .zip(&self.fitted.alpha)
            .map(|(fi, a)| coeff * fi.vector(self.hyper.h).get(feature_id) * a)
            .sum();
        grad_norm * self.scaler.std
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_circuit::{PassiveKind, SubcircuitType, Topology, VariableEdge};
    use oa_graph::{CircuitGraph, WlFeaturizer};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const H_EXTRACT: usize = 4;

    fn featurize_all(wl: &mut WlFeaturizer, ts: &[Topology]) -> Vec<WlFeatures> {
        ts.iter()
            .map(|t| wl.featurize(&CircuitGraph::from_topology(t), H_EXTRACT))
            .collect()
    }

    /// Synthetic target: +10 if the topology has a capacitor-bearing
    /// compensation subcircuit on v1-vout, plus noise-free base.
    fn structural_score(t: &Topology) -> f64 {
        let ty = t.type_on(VariableEdge::V1Vout);
        let has_cap_comp = matches!(
            ty,
            SubcircuitType::Passive(PassiveKind::C)
                | SubcircuitType::Passive(PassiveKind::SeriesRc)
                | SubcircuitType::Passive(PassiveKind::ParallelRc)
        );
        if has_cap_comp {
            10.0
        } else {
            1.0
        }
    }

    fn random_topologies(n: usize, seed: u64) -> Vec<Topology> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        while out.len() < n {
            let t = Topology::random(&mut rng);
            if seen.insert(t) {
                out.push(t);
            }
        }
        out
    }

    #[test]
    fn learns_structure_dependent_targets() {
        let mut wl = WlFeaturizer::new();
        let train = random_topologies(40, 21);
        let feats = featurize_all(&mut wl, &train);
        let y: Vec<f64> = train.iter().map(structural_score).collect();
        let gp = WlGp::fit(feats, y).unwrap();

        // Held-out predictions must separate the two classes.
        let test = random_topologies(30, 99);
        let test_feats = featurize_all(&mut wl, &test);
        let mut hit = 0;
        for (t, f) in test.iter().zip(&test_feats) {
            let (mean, _) = gp.predict(f).unwrap();
            let predicted_high = mean > 5.5;
            let actually_high = structural_score(t) > 5.0;
            if predicted_high == actually_high {
                hit += 1;
            }
        }
        assert!(hit >= 22, "only {hit}/30 held-out predictions correct");
    }

    #[test]
    fn gradient_sign_identifies_beneficial_structure() {
        let mut wl = WlFeaturizer::new();
        let train = random_topologies(50, 33);
        let feats = featurize_all(&mut wl, &train);
        let y: Vec<f64> = train.iter().map(structural_score).collect();
        let gp = WlGp::fit(feats, y).unwrap();

        // The h=0 feature for a plain Miller capacitor type "C" should have
        // a positive gradient (it adds +9 to the target when on v1-vout;
        // C also appears on ground edges where it is neutral, so the signal
        // is diluted but must stay positive).
        if let Some(id) = wl.initial_label_id("C") {
            let g = gp.feature_gradient(id);
            assert!(g > 0.0, "gradient for C = {g}");
        }
        // An unknown feature id has zero gradient.
        assert_eq!(gp.feature_gradient(u32::MAX), 0.0);
    }

    #[test]
    fn prediction_on_training_point_is_close() {
        let mut wl = WlFeaturizer::new();
        let train = random_topologies(25, 7);
        let feats = featurize_all(&mut wl, &train);
        let y: Vec<f64> = train.iter().map(structural_score).collect();
        let gp = WlGp::fit(feats.clone(), y.clone()).unwrap();
        let mut err = 0.0;
        for (f, yi) in feats.iter().zip(&y) {
            let (m, _) = gp.predict(f).unwrap();
            err += (m - yi).abs();
        }
        err /= y.len() as f64;
        assert!(err < 2.0, "mean training error {err}");
    }

    #[test]
    fn variance_is_lower_on_training_points() {
        let mut wl = WlFeaturizer::new();
        let train = random_topologies(20, 13);
        let feats = featurize_all(&mut wl, &train);
        let y: Vec<f64> = train.iter().map(structural_score).collect();
        let gp = WlGp::fit(feats.clone(), y).unwrap();
        let (_, var_train) = gp.predict(&feats[0]).unwrap();

        let novel = random_topologies(60, 77)
            .into_iter()
            .find(|t| !train.contains(t))
            .unwrap();
        let f_novel = wl.featurize(&CircuitGraph::from_topology(&novel), H_EXTRACT);
        let (_, var_novel) = gp.predict(&f_novel).unwrap();
        assert!(var_novel > var_train * 0.5, "novel var not larger");
    }

    #[test]
    fn h_is_selected_within_extracted_range() {
        let mut wl = WlFeaturizer::new();
        let train = random_topologies(15, 3);
        let feats = featurize_all(&mut wl, &train);
        let y: Vec<f64> = train.iter().map(structural_score).collect();
        let gp = WlGp::fit(feats, y).unwrap();
        assert!(gp.hyperparams().h <= H_EXTRACT);
    }

    #[test]
    fn fit_shared_matches_fit_and_shares_storage() {
        let mut wl = WlFeaturizer::new();
        let train = random_topologies(20, 55);
        let feats = featurize_all(&mut wl, &train);
        let y: Vec<f64> = train.iter().map(structural_score).collect();
        let owned = WlGp::fit(feats.clone(), y.clone()).unwrap();
        let shared = Arc::new(feats.clone());
        let obj = WlGp::fit_shared(shared.clone(), y.clone()).unwrap();
        let con = WlGp::fit_shared(shared.clone(), y.iter().map(|v| -v).collect()).unwrap();
        for f in &feats[..5] {
            let (a, va) = owned.predict(f).unwrap();
            let (b, vb) = obj.predict(f).unwrap();
            assert_eq!(a, b);
            assert_eq!(va, vb);
        }
        assert!(Arc::ptr_eq(&obj.feats, &shared));
        assert!(Arc::ptr_eq(&con.feats, &shared));
    }

    #[test]
    fn rejects_empty_training_set() {
        assert!(matches!(
            WlGp::fit(vec![], vec![]),
            Err(GpError::BadTrainingSet { .. })
        ));
    }

    #[test]
    fn rejects_underextracted_prediction_features() {
        let mut wl = WlFeaturizer::new();
        let train = random_topologies(10, 4);
        let feats = featurize_all(&mut wl, &train);
        let y: Vec<f64> = train.iter().map(structural_score).collect();
        let gp = WlGp::fit(feats, y).unwrap();
        if gp.hyperparams().h > 0 {
            let f0 = wl.featurize(&CircuitGraph::from_topology(&Topology::bare_cascade()), 0);
            assert!(gp.predict(&f0).is_err());
        }
    }
}
