//! Error type for Gaussian-process training and prediction.

use oa_linalg::LinalgError;
use std::error::Error;
use std::fmt;

/// Errors produced by GP fitting or prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// Training inputs and targets have different lengths, or are empty.
    BadTrainingSet {
        /// Number of inputs.
        inputs: usize,
        /// Number of targets.
        targets: usize,
    },
    /// A target value is non-finite.
    NonFiniteTarget {
        /// Index of the offending target.
        index: usize,
    },
    /// The Gram matrix could not be factorized even with jitter.
    GramNotPd {
        /// Underlying linear-algebra error.
        source: LinalgError,
    },
    /// A prediction input has the wrong dimension.
    DimensionMismatch {
        /// Expected input dimension.
        expected: usize,
        /// Provided input dimension.
        found: usize,
    },
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::BadTrainingSet { inputs, targets } => write!(
                f,
                "bad training set: {inputs} inputs vs {targets} targets (both must be equal and non-zero)"
            ),
            GpError::NonFiniteTarget { index } => {
                write!(f, "target {index} is not finite")
            }
            GpError::GramNotPd { source } => {
                write!(f, "gram matrix is not positive definite: {source}")
            }
            GpError::DimensionMismatch { expected, found } => {
                write!(f, "input has dimension {found}, expected {expected}")
            }
        }
    }
}

impl Error for GpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GpError::GramNotPd { source } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = GpError::BadTrainingSet {
            inputs: 3,
            targets: 5,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GpError>();
    }
}
