//! Shared GP training plumbing: target normalization, Gram factorization
//! and the log marginal likelihood used for hyperparameter selection.

use oa_linalg::{Cholesky, Matrix};

use crate::error::GpError;

/// Z-score normalization of training targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetScaler {
    /// Mean of the raw targets.
    pub mean: f64,
    /// Standard deviation of the raw targets (floored to avoid division by
    /// zero on constant data).
    pub std: f64,
}

impl TargetScaler {
    /// Fits the scaler to raw targets.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::NonFiniteTarget`] if any value is not finite and
    /// [`GpError::BadTrainingSet`] on an empty slice.
    pub fn fit(y: &[f64]) -> Result<Self, GpError> {
        if y.is_empty() {
            return Err(GpError::BadTrainingSet {
                inputs: 0,
                targets: 0,
            });
        }
        for (i, v) in y.iter().enumerate() {
            if !v.is_finite() {
                return Err(GpError::NonFiniteTarget { index: i });
            }
        }
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let var = y.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / y.len() as f64;
        Ok(TargetScaler {
            mean,
            std: var.sqrt().max(1e-12),
        })
    }

    /// Normalizes a raw target.
    pub fn normalize(&self, y: f64) -> f64 {
        (y - self.mean) / self.std
    }

    /// Restores a normalized value.
    pub fn denormalize(&self, z: f64) -> f64 {
        z * self.std + self.mean
    }

    /// Restores a normalized variance.
    pub fn denormalize_var(&self, var: f64) -> f64 {
        var * self.std * self.std
    }
}

/// A factorized GP system: `α = (K + σ²I)⁻¹ y` plus the quantities needed
/// for prediction and model selection.
#[derive(Debug, Clone)]
pub struct FittedGram {
    /// Cholesky factor of the noisy Gram matrix.
    pub chol: Cholesky,
    /// Weight vector `α`.
    pub alpha: Vec<f64>,
    /// Log marginal likelihood of the (normalized) targets.
    pub lml: f64,
}

/// Factorizes `K_signal + noise_var·I` and computes `α` and the log
/// marginal likelihood for the normalized targets `y_norm`.
///
/// # Errors
///
/// Returns [`GpError::GramNotPd`] when the jittered factorization fails and
/// [`GpError::BadTrainingSet`] on a size mismatch.
pub fn fit_gram(k_signal: &Matrix, noise_var: f64, y_norm: &[f64]) -> Result<FittedGram, GpError> {
    let n = y_norm.len();
    if k_signal.rows() != n || k_signal.cols() != n || n == 0 {
        return Err(GpError::BadTrainingSet {
            inputs: k_signal.rows(),
            targets: n,
        });
    }
    let mut k = k_signal.clone();
    k.add_diag(noise_var.max(0.0));
    let (chol, _jitter) =
        Cholesky::new_with_jitter(&k, 1e-10, 10).map_err(|source| GpError::GramNotPd { source })?;
    let alpha = chol
        .solve(y_norm)
        .map_err(|source| GpError::GramNotPd { source })?;
    let data_fit: f64 = y_norm.iter().zip(&alpha).map(|(y, a)| y * a).sum();
    let lml =
        -0.5 * data_fit - 0.5 * chol.log_det() - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
    Ok(FittedGram { chol, alpha, lml })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaler_roundtrips() {
        let y = [1.0, 2.0, 3.0, 10.0];
        let s = TargetScaler::fit(&y).unwrap();
        for v in y {
            assert!((s.denormalize(s.normalize(v)) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn scaler_handles_constant_targets() {
        let s = TargetScaler::fit(&[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(s.normalize(5.0), 0.0);
        assert!(s.std > 0.0);
    }

    #[test]
    fn scaler_rejects_nan() {
        assert!(matches!(
            TargetScaler::fit(&[1.0, f64::NAN]),
            Err(GpError::NonFiniteTarget { index: 1 })
        ));
    }

    #[test]
    fn fit_gram_interpolates_with_tiny_noise() {
        // K = I → α = y/(1+σ²).
        let k = Matrix::identity(3);
        let y = [1.0, -1.0, 0.5];
        let fit = fit_gram(&k, 1e-9, &y).unwrap();
        for (a, v) in fit.alpha.iter().zip(&y) {
            assert!((a - v).abs() < 1e-6);
        }
    }

    #[test]
    fn marginal_likelihood_prefers_matching_noise_level() {
        // Unit-variance, uncorrelated targets under a unit Gram: a small
        // noise level explains them better than drowning them in noise.
        let k = Matrix::identity(4);
        let y = [1.0, -1.0, 1.0, -1.0];
        let y_norm: Vec<f64> = {
            let s = TargetScaler::fit(&y).unwrap();
            y.iter().map(|&v| s.normalize(v)).collect()
        };
        let low = fit_gram(&k, 1e-4, &y_norm).unwrap();
        let high = fit_gram(&k, 10.0, &y_norm).unwrap();
        assert!(low.lml > high.lml);
    }

    #[test]
    fn fit_gram_rejects_mismatched_sizes() {
        let k = Matrix::identity(2);
        assert!(matches!(
            fit_gram(&k, 0.1, &[1.0, 2.0, 3.0]),
            Err(GpError::BadTrainingSet { .. })
        ));
    }
}
