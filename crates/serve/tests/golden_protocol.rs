//! Golden-file tests for the NDJSON protocol.
//!
//! A fixed request script replays against a fresh [`Service`]; every
//! response must match the checked-in fixture byte for byte. The
//! fixture is the wire contract: success envelopes, top-level error
//! frames, typed per-item `eval_batch` errors, `size_opt` and `stats`
//! shapes all live in one reviewable file, so any accidental protocol
//! change shows up as a fixture diff.
//!
//! The only canonicalization is zeroing `"micros"` counters in `stats`
//! responses — the one field that legitimately depends on wall clock.
//!
//! To regenerate after an intentional protocol change:
//!
//! ```text
//! OA_REGEN_GOLDEN=1 cargo test -p oa-serve --test golden_protocol
//! ```
//!
//! then review the diff of `tests/golden/protocol.txt`.

use std::fs;
use std::path::PathBuf;

use oa_circuit::{ParamSpace, Topology};
use oa_serve::Service;
use oa_store::Store;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/protocol.txt")
}

/// An `x` vector literal of the right dimension for `topology`, spread
/// over the open unit interval so every parameter is distinct.
fn x_literal(topology: usize) -> String {
    let t = Topology::from_index(topology).expect("fixture topology in range");
    let dim = ParamSpace::for_topology(&t).dim();
    let xs: Vec<String> = (0..dim)
        .map(|j| format!("{:.3}", 0.25 + 0.5 * j as f64 / dim.max(1) as f64))
        .collect();
    format!("[{}]", xs.join(","))
}

/// Sessions the harness allows open at once — small enough for the
/// script to hit the `session_limit` error on purpose. The fabric
/// replay in `oa-router` pins the same limit on every shard.
pub const GOLDEN_SESSION_LIMIT: usize = 3;

/// The request script. Every protocol surface appears at least once:
/// eval (miss, then store hit), per-spec routing, every top-level error
/// shape, typed per-item batch errors, size_opt, stats, and the full
/// session family — open/step/session_stats/close plus the typed
/// `unknown_session`, `spec_invalid` and `session_limit` errors.
///
/// Session spec sets are chosen for fabric transparency: the stepping
/// session is single-spec (no warm scan), and family members never name
/// a spec with `size_opt` records in the script, so warm counts are 0
/// on any store layout — single-node or per-shard.
fn script() -> Vec<String> {
    let x0 = x_literal(0);
    let x1031 = x_literal(1031);
    vec![
        // eval: store miss, then byte-identical store hit.
        format!(r#"{{"id":1,"op":"eval","spec":"S-1","topology":0,"x":{x0}}}"#),
        format!(r#"{{"id":2,"op":"eval","spec":"S-1","topology":0,"x":{x0}}}"#),
        format!(r#"{{"id":3,"op":"eval","spec":"S-2","topology":1031,"x":{x1031}}}"#),
        // Top-level error frames.
        r#"{oops"#.to_owned(),
        r#"{"id":4,"op":"warp","spec":"S-1"}"#.to_owned(),
        r#"{"id":5,"spec":"S-1"}"#.to_owned(),
        r#"{"id":6,"op":"eval","spec":"S-9","topology":0,"x":[0.5]}"#.to_owned(),
        format!(r#"{{"id":7,"op":"eval","spec":"S-1","topology":999999,"x":{x0}}}"#),
        r#"{"id":8,"op":"eval","spec":"S-1","topology":0}"#.to_owned(),
        // eval_batch: good item + typed per-item error frames.
        format!(
            r#"{{"id":9,"op":"eval_batch","spec":"S-1","items":[{{"topology":0,"x":{x0}}},{{"topology":999999,"x":{x0}}},{{"topology":0}}]}}"#
        ),
        // size_opt: seeded, tiny budget, deterministic.
        r#"{"id":10,"op":"size_opt","spec":"S-1","topology":0,"seed":7,"n_init":2,"n_iter":1}"#
            .to_owned(),
        // Session lifecycle: open, init steps, a BO step, stats, close.
        r#"{"id":12,"op":"open_session","session":40,"specs":["S-4"],"seed":9,"n_init":2,"pool_size":8,"size_init":2,"size_iter":1}"#
            .to_owned(),
        r#"{"id":13,"op":"step","session":40}"#.to_owned(),
        r#"{"id":14,"op":"step","session":40}"#.to_owned(),
        r#"{"id":15,"op":"step","session":40}"#.to_owned(),
        r#"{"id":16,"op":"session_stats","session":40}"#.to_owned(),
        // Typed session errors.
        r#"{"id":17,"op":"step","session":77}"#.to_owned(),
        r#"{"id":18,"op":"open_session","session":41,"specs":["S-9"]}"#.to_owned(),
        r#"{"id":19,"op":"open_session","session":41,"specs":[]}"#.to_owned(),
        r#"{"id":20,"op":"open_session","specs":["S-2"]}"#.to_owned(),
        r#"{"id":21,"op":"open_session","session":44,"specs":["S-3","S-2","S-3"]}"#.to_owned(),
        // Fill up to the session limit, overflow, then close to fit.
        r#"{"id":22,"op":"open_session","session":41,"specs":["S-2","S-3"],"seed":1}"#.to_owned(),
        r#"{"id":23,"op":"open_session","session":42,"specs":["S-5"],"seed":2}"#.to_owned(),
        r#"{"id":24,"op":"open_session","session":43,"specs":["S-2"],"seed":3}"#.to_owned(),
        r#"{"id":25,"op":"close_session","session":41}"#.to_owned(),
        r#"{"id":26,"op":"open_session","session":43,"specs":["S-2"],"seed":3}"#.to_owned(),
        r#"{"id":27,"op":"close_session","session":99}"#.to_owned(),
        r#"{"id":28,"op":"close_session","session":40}"#.to_owned(),
        // stats: shape-stable modulo the zeroed micros counters. Exactly
        // one stats op, last — the fabric broadcast increments *every*
        // shard's own stats counter, so a second stats op would read a
        // different count through the fabric than direct.
        r#"{"id":29,"op":"stats"}"#.to_owned(),
    ]
}

/// Zeroes every `"micros":<number>` payload — elapsed wall-clock time is
/// the one legitimately nondeterministic byte sequence in the protocol.
fn canonicalize(line: &str) -> String {
    let marker = "\"micros\":";
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(at) = rest.find(marker) {
        let (head, tail) = rest.split_at(at + marker.len());
        out.push_str(head);
        out.push('0');
        let digits = tail
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(tail.len());
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

fn run_script() -> Vec<(String, String)> {
    let dir = std::env::temp_dir().join(format!(
        "oa_serve_golden_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    let service = Service::new(Store::open(dir.join("results.log")).expect("fresh store opens"))
        .with_session_limit(GOLDEN_SESSION_LIMIT);
    let pairs = script()
        .into_iter()
        .map(|request| {
            let response = canonicalize(&service.handle_line(&request));
            (request, response)
        })
        .collect();
    drop(service);
    let _ = fs::remove_dir_all(&dir);
    pairs
}

fn render(pairs: &[(String, String)]) -> String {
    let mut out = String::from(
        "# Golden NDJSON protocol fixture. One `>` request line followed by its\n\
         # `<` response line (micros counters canonicalized to 0).\n\
         # Regenerate: OA_REGEN_GOLDEN=1 cargo test -p oa-serve --test golden_protocol\n",
    );
    for (request, response) in pairs {
        out.push_str("> ");
        out.push_str(request);
        out.push('\n');
        out.push_str("< ");
        out.push_str(response);
        out.push('\n');
    }
    out
}

fn parse_fixture(text: &str) -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    let mut pending: Option<String> = None;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(request) = line.strip_prefix("> ") {
            assert!(
                pending.is_none(),
                "fixture line {}: request without a response before it",
                lineno + 1
            );
            pending = Some(request.to_owned());
        } else if let Some(response) = line.strip_prefix("< ") {
            let request = pending.take().unwrap_or_else(|| {
                panic!("fixture line {}: response without a request", lineno + 1)
            });
            pairs.push((request, response.to_owned()));
        } else {
            panic!("fixture line {}: expected '>', '<' or '#'", lineno + 1);
        }
    }
    assert!(pending.is_none(), "fixture ends with an unanswered request");
    pairs
}

#[test]
fn protocol_responses_match_the_golden_fixture() {
    let path = golden_path();
    let actual = run_script();

    if std::env::var_os("OA_REGEN_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("fixture has a parent dir")).unwrap();
        fs::write(&path, render(&actual)).expect("write golden fixture");
        return;
    }

    let text = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             OA_REGEN_GOLDEN=1 cargo test -p oa-serve --test golden_protocol",
            path.display()
        )
    });
    let expected = parse_fixture(&text);

    assert_eq!(
        expected.len(),
        actual.len(),
        "fixture has {} request/response pairs, the script produced {}",
        expected.len(),
        actual.len()
    );
    for (i, ((exp_req, exp_resp), (act_req, act_resp))) in expected.iter().zip(&actual).enumerate()
    {
        assert_eq!(
            exp_req, act_req,
            "pair {i}: the in-code script drifted from the checked-in requests; \
             regenerate the fixture if the change is intentional"
        );
        assert_eq!(
            exp_resp, act_resp,
            "pair {i}: response for {act_req} diverged from the golden fixture; \
             if the protocol change is intentional, regenerate and review the diff"
        );
    }
}

#[test]
fn canonicalization_touches_only_micros() {
    let line = r#"{"count":3,"errors":1,"micros":18123},"x":[1.5e-3],"micros":7"#;
    assert_eq!(
        canonicalize(line),
        r#"{"count":3,"errors":1,"micros":0},"x":[1.5e-3],"micros":0"#
    );
    let untouched = r#"{"id":1,"ok":true,"result":{"gain_db":52.1}}"#;
    assert_eq!(canonicalize(untouched), untouched);
}
