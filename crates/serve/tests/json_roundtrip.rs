//! Property tests for the hand-rolled wire JSON: `parse(encode(v))` is
//! the identity (bit-exact for numbers, including `-0.0`), escaping
//! round-trips arbitrary strings, non-finite numbers are rejected on
//! both sides, and the `{:.17e}` float rendering preserves every bit
//! pattern of every finite `f64`.

use oa_serve::{Json, JsonError};
use proptest::prelude::*;

/// Splitmix64 — a tiny deterministic PRNG so we can grow arbitrary JSON
/// trees from a single seed (the vendored proptest has no recursive
/// strategies).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A finite f64 drawn from adversarial families: integers around 2^53,
/// signed zeros, subnormals, extremes, and raw bit patterns.
fn arb_finite(rng: &mut Rng) -> f64 {
    match rng.next() % 8 {
        0 => 0.0,
        1 => -0.0,
        2 => (rng.next() % 20_000_000) as f64 - 10_000_000.0,
        3 => {
            let near = 9_007_199_254_740_992.0_f64; // 2^53
            near - (rng.next() % 3) as f64
        }
        4 => f64::MIN_POSITIVE * (1 + rng.next() % 5) as f64,
        5 => f64::from_bits(rng.next() % 4), // subnormals incl. +0
        6 => f64::MAX / (1 + rng.next() % 1000) as f64,
        _ => {
            let v = f64::from_bits(rng.next());
            if v.is_finite() {
                v
            } else {
                1.25e-300
            }
        }
    }
}

/// An arbitrary string mixing ASCII, escapes, control chars, and
/// non-BMP code points (surrogate-pair territory).
fn arb_string(rng: &mut Rng) -> String {
    let len = (rng.next() % 12) as usize;
    (0..len)
        .map(|_| match rng.next() % 8 {
            0 => '"',
            1 => '\\',
            2 => char::from(u8::try_from(rng.next() % 0x20).unwrap()), // control
            3 => '🦀',
            4 => 'é',
            5 => '\u{2028}',
            _ => char::from(u8::try_from(0x20 + rng.next() % 0x5f).unwrap()),
        })
        .collect()
}

/// A random JSON tree of bounded depth.
fn arb_json(rng: &mut Rng, depth: usize) -> Json {
    let leaf_only = depth == 0;
    match rng.next() % if leaf_only { 4 } else { 6 } {
        0 => Json::Null,
        1 => Json::Bool(rng.next().is_multiple_of(2)),
        2 => Json::Num(arb_finite(rng)),
        3 => Json::Str(arb_string(rng)),
        4 => {
            let n = (rng.next() % 4) as usize;
            Json::Arr((0..n).map(|_| arb_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = (rng.next() % 4) as usize;
            Json::Obj(
                (0..n)
                    .map(|i| (format!("{}_{i}", arb_string(rng)), arb_json(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// encode → parse is the identity on arbitrary trees, compared
    /// bit-exactly (`-0.0` and `0.0` are distinct; NaN never appears).
    #[test]
    fn encode_parse_roundtrips_trees(seed in 0u64..u64::MAX) {
        let mut rng = Rng(seed);
        let value = arb_json(&mut rng, 4);
        let text = value.encode().expect("tree is finite");
        let back = Json::parse(&text).expect("own encoding must parse");
        prop_assert!(
            value.bit_eq(&back),
            "roundtrip mismatch for {text}"
        );
        // Re-encoding the parse is byte-stable (canonical form is a
        // fixed point).
        prop_assert_eq!(back.encode().unwrap(), text);
    }

    /// Every finite f64 — drawn from raw bit patterns — survives the
    /// canonical number rendering with its exact bit pattern.
    #[test]
    fn every_finite_f64_roundtrips_bit_exactly(bits in 0u64..u64::MAX) {
        let v = f64::from_bits(bits);
        if v.is_finite() {
            let text = Json::Num(v).encode().unwrap();
            let back = Json::parse(&text).unwrap();
            let got = back.as_f64().unwrap();
            prop_assert!(
                got.to_bits() == v.to_bits(),
                "{v:?} rendered as {text} parsed back as {got:?}"
            );
        }
    }

    /// Arbitrary strings (escapes, control chars, surrogate pairs)
    /// round-trip exactly.
    #[test]
    fn strings_roundtrip(seed in 0u64..u64::MAX) {
        let mut rng = Rng(seed);
        let s = arb_string(&mut rng);
        let text = Json::Str(s.clone()).encode().unwrap();
        let back = Json::parse(&text).unwrap();
        prop_assert_eq!(back.as_str(), Some(s.as_str()));
    }

    /// NaN and ±Inf are rejected on encode wherever they hide in the
    /// tree, and over-range literals are rejected on parse.
    #[test]
    fn non_finite_rejected_everywhere(seed in 0u64..u64::MAX) {
        let mut rng = Rng(seed);
        let bad = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY]
            [(rng.next() % 3) as usize];
        let wrapped = match rng.next() % 3 {
            0 => Json::Num(bad),
            1 => Json::Arr(vec![Json::Null, Json::Num(bad)]),
            _ => Json::Obj(vec![("k".into(), Json::Num(bad))]),
        };
        prop_assert_eq!(wrapped.encode(), Err(JsonError::NonFiniteNumber));
        // A finite-looking literal that overflows f64 must not parse
        // into Inf.
        let exp = 400 + rng.next() % 1000;
        prop_assert!(Json::parse(&format!("1e{exp}")).is_err());
    }
}
