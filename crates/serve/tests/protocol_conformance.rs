//! Trace conformance: the golden NDJSON fixture must be *accepted* by
//! the automaton compiled from `protocol.spec`, and seeded mutations of
//! the fixture must be *rejected* with the pinned diagnostic for the
//! obligation they break.
//!
//! This is the dynamic half of the wire-conformance gate: the static
//! half (`oa_lint wire --check`, `crates/analyze/tests/wire_snapshot.rs`)
//! proves the code emits and matches only declared frames; this file
//! proves the declared lifecycle and field contracts hold on real
//! recorded traffic. The chaos corpora get the same treatment in
//! `crates/router/tests/chaos_*.rs` and `crates/fault/tests/chaos_serve.rs`.

use oa_analyze::protocol::{Automaton, ProtocolSpec};

const SPEC_TEXT: &str = include_str!("../protocol.spec");
const GOLDEN: &str = include_str!("golden/protocol.txt");

fn spec() -> ProtocolSpec {
    ProtocolSpec::parse(SPEC_TEXT).expect("protocol.spec must parse")
}

/// Splits the fixture's `> request` / `< response` lines into pairs.
fn parse_pairs(text: &str) -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    let mut pending: Option<String> = None;
    for line in text.lines() {
        if let Some(req) = line.strip_prefix("> ") {
            assert!(pending.is_none(), "two consecutive requests in fixture");
            pending = Some(req.to_owned());
        } else if let Some(resp) = line.strip_prefix("< ") {
            let req = pending.take().expect("response without a request");
            pairs.push((req, resp.to_owned()));
        }
    }
    assert!(pending.is_none(), "trailing unanswered request in fixture");
    pairs
}

fn replay(pairs: &[(String, String)]) -> Result<(), String> {
    let s = spec();
    let mut a = Automaton::new(&s);
    for (req, resp) in pairs {
        a.observe(req, resp)?;
    }
    Ok(())
}

#[test]
fn golden_fixture_is_accepted_by_the_spec_automaton() {
    let pairs = parse_pairs(GOLDEN);
    assert!(
        pairs.len() > 20,
        "fixture unexpectedly small: {}",
        pairs.len()
    );
    let s = spec();
    let mut a = Automaton::new(&s);
    for (req, resp) in &pairs {
        a.observe(req, resp).unwrap_or_else(|e| {
            panic!("golden fixture violates protocol.spec: {e}\n  > {req}\n  < {resp}")
        });
    }
    // The fixture ends with sessions 42 and 43 still open (40 and 41
    // were closed) — the automaton must have tracked that.
    let open: Vec<u64> = a.open_sessions().keys().copied().collect();
    assert_eq!(open, vec![42, 43]);
}

/// Replays the fixture with its first occurrence of `from` replaced by
/// `to`, returning the rejection diagnostic.
fn mutated_rejection(from: &str, to: &str) -> String {
    let mutated = GOLDEN.replacen(from, to, 1);
    assert_ne!(
        mutated, GOLDEN,
        "mutation site '{from}' must exist in the fixture"
    );
    replay(&parse_pairs(&mutated)).expect_err("mutated fixture must be rejected")
}

#[test]
fn dropped_response_field_is_rejected() {
    // First `step` response loses its required `phase` field.
    let err = mutated_rejection("\"phase\":", "\"phaze\":");
    assert!(
        err.contains("'step' response missing required field 'phase'"),
        "{err}"
    );
}

#[test]
fn renamed_op_is_rejected() {
    // First eval request claims an op the spec never declared, yet the
    // response still succeeds.
    let err = mutated_rejection("\"op\":\"eval\"", "\"op\":\"warp\"");
    assert!(err.contains("undeclared op 'warp' got ok:true"), "{err}");
}

#[test]
fn swapped_error_kind_is_rejected() {
    // The step-on-unknown-session typed error answers with a kind
    // outside the declared table.
    let err = mutated_rejection("\"kind\":\"unknown_session\"", "\"kind\":\"ghost\"");
    assert!(err.contains("undeclared error kind 'ghost'"), "{err}");
}

#[test]
fn step_counter_skip_is_rejected() {
    // The first step answers `step:5` where the lifecycle obliges 1.
    let err = mutated_rejection("\"step\":1,", "\"step\":5,");
    assert!(err.contains("'step' is 5, expected 1"), "{err}");
}

#[test]
fn reordered_open_and_step_is_rejected() {
    // Swap the open_session(40) pair with the step that follows it: the
    // step now succeeds on a session that was never opened — exactly the
    // fork the lifecycle declaration exists to catch.
    let mut pairs = parse_pairs(GOLDEN);
    let open_at = pairs
        .iter()
        .position(|(req, _)| req.contains("\"id\":12,"))
        .expect("open_session(40) pair");
    assert!(pairs[open_at].0.contains("\"op\":\"open_session\""));
    assert!(pairs[open_at + 1].0.contains("\"op\":\"step\""));
    pairs.swap(open_at, open_at + 1);
    let err = replay(&pairs).expect_err("reordered lifecycle must be rejected");
    assert!(
        err.contains("'step' succeeded on session 40 which is not open"),
        "{err}"
    );
}
