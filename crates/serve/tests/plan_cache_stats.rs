//! Integration test for the symbolic-plan cache counters in the `stats`
//! op.
//!
//! Two evals of the *same topology at different sizing points* are
//! distinct store keys, so both reach the simulator — but they reduce to
//! one MNA sparsity pattern, so the second must reuse the first's
//! symbolic factorization plan. The `stats` op has to show exactly that:
//! the miss counter moves once per pattern, the hit counter moves on
//! every structurally-repeated simulation.

use std::fs;
use std::path::PathBuf;

use oa_circuit::{ParamSpace, Topology};
use oa_serve::{Json, Service};
use oa_store::Store;

fn temp_service(tag: &str) -> (Service, PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "oa_serve_plan_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    let service = Service::new(Store::open(dir.join("results.log")).expect("fresh store opens"));
    (service, dir)
}

fn eval_line(id: u64, topology: usize, x: &[f64]) -> String {
    let xs: Vec<String> = x.iter().map(|v| format!("{v:.17e}")).collect();
    format!(
        "{{\"id\":{id},\"op\":\"eval\",\"spec\":\"S-1\",\"topology\":{topology},\"x\":[{}]}}",
        xs.join(",")
    )
}

fn plan_counters(service: &Service) -> (u64, u64) {
    let resp = service.handle_line("{\"id\":99,\"op\":\"stats\"}");
    let parsed = Json::parse(&resp).expect("stats response is valid JSON");
    let plan = parsed
        .get("result")
        .and_then(|r| r.get("plan"))
        .expect("stats carries a 'plan' object");
    let read = |k: &str| plan.get(k).and_then(Json::as_f64).expect("counter") as u64;
    (read("hits"), read("misses"))
}

#[test]
fn plan_cache_counters_move_across_same_topology_sizings() {
    let (service, dir) = temp_service("move");
    let t = Topology::bare_cascade();
    let dim = ParamSpace::for_topology(&t).dim();

    assert_eq!(plan_counters(&service), (0, 0), "cold cache reads zero");

    // First sizing: a fresh pattern — one symbolic analysis, no reuse.
    let r1 = service.handle_line(&eval_line(1, t.index(), &vec![0.4; dim]));
    assert!(r1.contains("\"ok\":true"), "{r1}");
    let (hits_1, misses_1) = plan_counters(&service);
    assert_eq!(misses_1, 1, "first simulation analyzes the pattern");
    assert_eq!(hits_1, 0);

    // Second sizing, same topology, different x: a store miss (distinct
    // key, so the result cache cannot mask the simulator), but the same
    // sparsity pattern — the plan must be served from the cache.
    let r2 = service.handle_line(&eval_line(2, t.index(), &vec![0.6; dim]));
    assert!(r2.contains("\"ok\":true"), "{r2}");
    assert_eq!(service.sims(), 2, "different x must re-simulate");
    let (hits_2, misses_2) = plan_counters(&service);
    assert_eq!(misses_2, 1, "no second analysis for the same pattern");
    assert_eq!(hits_2, 1, "repeat pattern must hit the plan cache");

    // Store-served repeat: no simulation, so no plan-cache traffic.
    let r3 = service.handle_line(&eval_line(3, t.index(), &vec![0.4; dim]));
    assert_eq!(r3.replace("\"id\":3", "\"id\":1"), r1);
    assert_eq!(service.sims(), 2);
    assert_eq!(plan_counters(&service), (1, 1));

    let _ = fs::remove_dir_all(&dir);
}
