//! Session determinism properties (DESIGN.md §13).
//!
//! Two claims, both stated against [`Service::handle_line`] — the same
//! code path the TCP layer serves:
//!
//! 1. **Replay** — a session transcript (open → N×step → stats → close)
//!    is a pure function of the open request and the store snapshot at
//!    open time. Re-running the identical script on a *fresh* service
//!    over the store the first run appended to yields byte-identical
//!    frames: the session's own `size_opt` records are served back with
//!    the exact bytes the first run stored, and the warm-start scan
//!    excludes the target spec so those appends never shift the warm
//!    set. This is the invariant the failover replay
//!    ([`oa_serve::SessionDriver`]) rests on.
//! 2. **Isolation** — concurrent sessions interleaved on one service
//!    produce, per session, the same frames as running each session
//!    serially on its own. Per-session state sits behind its own lock
//!    and the shared store only ever gains byte-identical records, so
//!    tenants cannot perturb each other's iterate streams.

use std::fs;
use std::path::PathBuf;

use oa_serve::{request, Service};
use oa_store::Store;
use proptest::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "oa_session_det_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// One session transcript: open (S-3 target, S-1 warm family), `steps`
/// steps, a stats probe, close. Returns every response frame in order.
fn run_transcript(
    service: &Service,
    session: u64,
    seed: u64,
    n_init: usize,
    pool_size: usize,
    steps: usize,
) -> Vec<String> {
    let open = format!(
        r#"{{"id":1,"op":"open_session","session":{session},"specs":["S-3","S-1"],"seed":{seed},"n_init":{n_init},"pool_size":{pool_size},"size_init":2,"size_iter":1}}"#
    );
    let mut frames = vec![service.handle_line(&open)];
    for i in 0..steps {
        frames.push(service.handle_line(&request::step(2 + i as u64, session)));
    }
    frames.push(service.handle_line(&request::session_stats(90, session)));
    frames.push(service.handle_line(&request::close_session(91, session)));
    frames
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Replay: same script, same store lineage → byte-identical frames,
    /// even though the first run appended its own records to the store.
    #[test]
    fn session_replay_is_byte_identical_over_its_own_store_appends(
        seed in 0u64..1000,
        n_init in 0usize..3,
        steps in 1usize..4,
    ) {
        let dir = temp_dir("replay");
        let _ = fs::remove_dir_all(&dir);
        let store_path = dir.join("results.log");

        // Snapshot: two S-1 sizing records the warm scan will pick up.
        let service = Service::new(Store::open(&store_path).expect("store opens"));
        for (i, topology) in [0usize, 97].into_iter().enumerate() {
            let line = request::size_opt(50 + i as u64, "S-1", topology, seed ^ 7, 2, 1);
            let response = service.handle_line(&line);
            prop_assert!(response.contains("\"ok\":true"), "{response}");
        }

        let first = run_transcript(&service, 7, seed, n_init, 6, steps);
        drop(service);

        // Fresh service, same store — now holding the first run's appends.
        let replayed = Service::new(Store::open(&store_path).expect("store reopens"));
        let second = run_transcript(&replayed, 7, seed, n_init, 6, steps);
        prop_assert_eq!(first, second);
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Isolation: three sessions stepped concurrently on one shared service
/// must each see the exact frames they'd get running alone.
#[test]
fn interleaved_sessions_match_serial_per_session_transcripts() {
    let tenants: [(u64, u64); 3] = [(1, 11), (2, 22), (3, 33)];
    let steps = 3;

    // Serial reference: each session alone on its own fresh store.
    let mut serial = Vec::new();
    for (i, &(session, seed)) in tenants.iter().enumerate() {
        let dir = temp_dir(&format!("serial{i}"));
        let _ = fs::remove_dir_all(&dir);
        let service = Service::new(Store::open(dir.join("results.log")).expect("store opens"));
        serial.push(run_transcript(&service, session, seed, 2, 6, steps));
        drop(service);
        let _ = fs::remove_dir_all(&dir);
    }

    // Concurrent run: all three interleave on one service + one store.
    let dir = temp_dir("concurrent");
    let _ = fs::remove_dir_all(&dir);
    let service = Service::new(Store::open(dir.join("results.log")).expect("store opens"));
    let concurrent: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = tenants
            .iter()
            .map(|&(session, seed)| {
                let service = &service;
                scope.spawn(move || run_transcript(service, session, seed, 2, 6, steps))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });

    for (i, (alone, shared)) in serial.iter().zip(&concurrent).enumerate() {
        assert_eq!(
            alone, shared,
            "tenant {i}: concurrent transcript diverged from running alone"
        );
    }
    drop(service);
    let _ = fs::remove_dir_all(&dir);
}
