//! Failover regression: a client must survive its server being killed
//! and restarted on the same port, and the restarted instance must serve
//! byte-identical responses from the shared store.
//!
//! This is the bug the address-text fix targets: `Client` used to cache
//! the first resolved `SocketAddr` forever, so a reconnect after a
//! restart could dial a stale resolution. `Client::reconnect` now
//! re-resolves the address text on every call.

use oa_circuit::{ParamSpace, Topology};
use oa_fault::Faults;
use oa_serve::{request, resolve, serve, Client, Server, ServerConfig};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "oa_serve_failover_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn config_on(addr: &str, store: &Path) -> ServerConfig {
    ServerConfig {
        addr: addr.to_owned(),
        workers: 2,
        queue: 8,
        store_path: store.to_path_buf(),
        faults: Faults::none(),
        shard: None,
        session_limit: oa_serve::DEFAULT_SESSION_LIMIT,
    }
}

/// Binding the same port again races the kernel releasing it; retry a
/// bounded number of times instead of sleeping a fixed guess.
fn serve_with_retry(addr: &str, store: &Path) -> Server {
    let mut last = None;
    for _ in 0..50 {
        match serve(config_on(addr, store)) {
            Ok(server) => return server,
            Err(e) => {
                last = Some(e);
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        }
    }
    panic!("could not rebind {addr}: {last:?}");
}

#[test]
fn resolve_is_fresh_and_rejects_garbage() {
    let addrs = resolve("127.0.0.1:7878").unwrap();
    assert_eq!(addrs.len(), 1);
    assert_eq!(addrs[0].port(), 7878);
    assert!(resolve("definitely-not-a-host-name-xyz:1").is_err());
    assert!(resolve("no-port-at-all").is_err());
}

#[test]
fn client_reconnects_to_a_restarted_server_byte_identically() {
    let dir = temp_dir("restart");
    let store = dir.join("results.log");
    let first = serve(config_on("127.0.0.1:0", &store)).unwrap();
    let addr_text = first.addr().to_string();

    let t = Topology::bare_cascade();
    let x = vec![0.5; ParamSpace::for_topology(&t).dim()];
    let line = request::eval(1, "S-1", t.index(), &x);

    let mut client = Client::connect(addr_text.as_str()).unwrap();
    let before = client.request(&line).unwrap();

    // Hard-kill the server: the client's connection is severed, and the
    // next request observes EOF rather than hanging.
    first.kill();
    assert!(client.request(&line).is_err(), "killed server must EOF");

    // Restart on the very same port over the same store. The client
    // re-resolves the address text and dials the fresh instance.
    let second = serve_with_retry(&addr_text, &store);
    client.reconnect().unwrap();
    let after = client.request(&line).unwrap();
    assert_eq!(after, before, "restarted server must serve the store copy");
    assert_eq!(second.service().sims(), 0, "no re-simulation after restart");

    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
