//! Warm-start differential test (DESIGN.md §13).
//!
//! Claim: a warm-started session's objective posterior is *exactly* a
//! fresh [`WlGp`] fit on the k warm observations — warm records train
//! the GP like any other data, nothing more. The test drives the real
//! wire path (store records written through `size_opt` requests, the
//! serving warm scan [`Service::warm_observations`]), seeds a
//! [`BoSession`] the way `open_session` does, and compares its
//! [`BoSession::objective_posterior`] against a from-scratch featurize +
//! fit + predict pipeline at agreement ≤ 1e-10.
//!
//! A second test ties the wire format in: the first `step` of a
//! warm-started `open_session` proposes the same topology as an
//! in-process [`BoSession`] seeded with the same scan.

use oa_bo::{BoSession, TopoBoConfig};
use oa_circuit::Topology;
use oa_gp::WlGp;
use oa_graph::{WlFeatures, WlFeaturizer};
use oa_serve::{request, Json, Service};
use oa_store::Store;
use std::fs;
use std::path::PathBuf;

/// WL depth used by both sides — the `open_session` serving default.
const WL_LEVELS: usize = 4;
const SEED: u64 = 5;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "oa_warm_diff_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// The session config `open_session` builds for
/// `{"specs":["S-3","S-1"],"seed":5,"n_init":0,"pool_size":8}`.
fn session_config() -> TopoBoConfig {
    TopoBoConfig {
        n_init: 0,
        n_iter: 0,
        pool_size: 8,
        seed: SEED,
        wl_levels: WL_LEVELS,
        ..TopoBoConfig::default()
    }
}

/// Populates S-1 sizing records through the wire path and returns the
/// count that found a design (the records a warm scan picks up).
fn populate(service: &Service) -> usize {
    let mut found = 0;
    for (i, topology) in [0usize, 97, 1031].into_iter().enumerate() {
        let line = request::size_opt(70 + i as u64, "S-1", topology, 40 + i as u64, 2, 1);
        let response = service.handle_line(&line);
        let parsed = Json::parse(&response).expect("size_opt response parses");
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)), "{response}");
        if parsed
            .get("result")
            .and_then(|r| r.get("found"))
            .and_then(Json::as_bool)
            == Some(true)
        {
            found += 1;
        }
    }
    found
}

#[test]
fn warm_started_posterior_equals_a_fresh_fit_on_the_warm_observations() {
    let dir = temp_dir("posterior");
    let _ = fs::remove_dir_all(&dir);
    let service = Service::new(Store::open(dir.join("results.log")).expect("store opens"));
    let found = populate(&service);
    assert!(found >= 2, "fixture budgets must find designs ({found})");

    // The serving scan: S-1 family records re-scored under target S-3.
    let warm = service.warm_observations("S-3", &["S-1".to_owned()]);
    assert_eq!(warm.len(), found, "scan must see every found record");

    // Session side: seed exactly as op_open_session does.
    let mut session = BoSession::new(session_config());
    for (topology, observation) in &warm {
        session.seed_observation(*topology, observation.clone());
    }
    let probes: Vec<Topology> = [5usize, 123, 2041]
        .into_iter()
        .map(|i| Topology::from_index(i).expect("probe topology in range"))
        .collect();
    let session_posterior = session
        .objective_posterior(&probes)
        .expect("warm observations fit");

    // Reference side: fresh featurizer, fresh fit, same data and order.
    let mut featurizer = WlFeaturizer::new();
    let feats: Vec<WlFeatures> = warm
        .iter()
        .map(|(t, _)| featurizer.featurize_topology(t, WL_LEVELS))
        .collect();
    let y: Vec<f64> = warm.iter().map(|(_, o)| o.objective).collect();
    let gp = WlGp::fit(feats, y).expect("reference fit");
    for (probe, &(mean, var)) in probes.iter().zip(&session_posterior) {
        let (ref_mean, ref_var) = gp
            .predict(&featurizer.featurize_topology(probe, WL_LEVELS))
            .expect("reference predict");
        assert!(
            (mean - ref_mean).abs() <= 1e-10,
            "posterior mean diverged at {probe:?}: {mean} vs {ref_mean}"
        );
        assert!(
            (var - ref_var).abs() <= 1e-10,
            "posterior spread diverged at {probe:?}: {var} vs {ref_var}"
        );
    }
    drop(service);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn first_step_of_a_warm_started_session_matches_the_in_process_proposal() {
    let dir = temp_dir("proposal");
    let _ = fs::remove_dir_all(&dir);
    let service = Service::new(Store::open(dir.join("results.log")).expect("store opens"));
    let found = populate(&service);
    assert!(found >= 2, "fixture budgets must find designs ({found})");

    // Expected proposal: a BoSession seeded with the same scan.
    let warm = service.warm_observations("S-3", &["S-1".to_owned()]);
    let mut expected = BoSession::new(session_config());
    for (topology, observation) in warm {
        expected.seed_observation(topology, observation);
    }
    let proposal = expected
        .propose_default()
        .expect("warm pool yields a proposal");

    // Wire side: open with the matching parameters, step once.
    let open = format!(
        r#"{{"id":1,"op":"open_session","session":6,"specs":["S-3","S-1"],"seed":{SEED},"n_init":0,"pool_size":8,"size_init":2,"size_iter":1}}"#
    );
    let opened = Json::parse(&service.handle_line(&open)).expect("open parses");
    assert_eq!(
        opened
            .get("result")
            .and_then(|r| r.get("warm"))
            .and_then(Json::as_u64),
        Some(found as u64),
        "open_session must report the warm count"
    );
    let stepped = Json::parse(&service.handle_line(&request::step(2, 6))).expect("step parses");
    let result = stepped.get("result").expect("step succeeds");
    assert_eq!(result.get("phase").and_then(Json::as_str), Some("bo"));
    assert_eq!(
        result.get("topology").and_then(Json::as_u64),
        Some(proposal.index() as u64),
        "first BO proposal must match the in-process session"
    );
    drop(service);
    let _ = fs::remove_dir_all(&dir);
}
