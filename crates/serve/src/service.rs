//! Protocol semantics: request decoding, store-backed evaluation,
//! statistics.
//!
//! [`Service`] is transport-agnostic — [`Service::handle_line`] maps one
//! request line to one response line, and the TCP layer in
//! [`crate::server`] only shuttles lines. That makes the whole protocol
//! testable in-process, and is what the integration tests use to prove
//! the server byte-matches direct evaluator calls.
//!
//! ## Determinism contract
//!
//! For `eval`, `eval_batch` and `size_opt`, the response `result` is a
//! pure function of `(request, store contents)`, and the store only ever
//! holds values that the same pure computation produced — so *same
//! request + same seed → byte-identical `result`*, whether it was
//! simulated or served from the store, before or after a daemon restart.
//! Responses deliberately carry no cached/latency markers; cache
//! behavior is observable through `stats` only.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use into_oa::{EvalError, EvalHandle, Evaluator, PlanCacheStats, SizedDesign, Spec};
use oa_bo::{BoSession, TopoBoConfig, TopoObservation};
use oa_circuit::Topology;
use oa_fault::{Decision, Faults, Site};
use oa_graph::WlFeaturizer;
use oa_store::{hash_f64s, EvalKey, EvalKind, Store};

use crate::json::Json;
use crate::session::{
    close_result_json, observation_from_size_opt, open_result_json, session_id, session_stats_json,
    step_result_json, OpError, OpenParams, SessionCore, SessionManager, DEFAULT_SESSION_LIMIT,
};

/// WL refinement depth used for response fingerprints.
const WL_FINGERPRINT_H: usize = 2;

/// Default sizing-BO budget for `size_opt` (the paper's setup).
const DEFAULT_SIZE_OPT_INIT: usize = 10;
/// Default sizing-BO iterations for `size_opt`.
const DEFAULT_SIZE_OPT_ITER: usize = 30;

/// Identity of one shard in an `oa-router` fabric: `index` of `count`
/// backends. Reported verbatim in `stats` (appended at the end of the
/// object, so single-node response bytes are unchanged when absent) and
/// in the daemon startup banner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardIdentity {
    /// Zero-based shard index.
    pub index: u32,
    /// Total shard count in the fabric.
    pub count: u32,
}

/// Fingerprint of the process constants and AC options baked into an
/// evaluator — part of every [`EvalKey`], so results measured under
/// different processes can never alias in the store.
pub fn process_fingerprint(evaluator: &Evaluator) -> u64 {
    let p = evaluator.process();
    hash_f64s([
        p.vdd,
        p.gm_over_id,
        p.intrinsic_gain,
        p.parasitic_tau,
        p.co_floor,
        p.gm_ft_hz,
        p.gmin,
    ])
}

/// Deterministic WL fingerprint of a topology: the self-kernel of its
/// depth-`2` WL features, mixed with the canonical code. Computing it
/// through a shared [`WlFeaturizer`] exercises the feature memoization,
/// whose hit/miss counters the `stats` endpoint reports.
pub fn wl_fingerprint(wl: &mut WlFeaturizer, topology: &Topology) -> u64 {
    let features = wl.featurize_topology(topology, WL_FINGERPRINT_H);
    let self_kernel = features.kernel(&features, WL_FINGERPRINT_H);
    hash_f64s([self_kernel, topology.index() as f64])
}

/// Renders an eval result object — the exact bytes stored and served.
/// Public so tests can state the byte-identity acceptance criterion
/// against direct [`Evaluator`] calls.
pub fn eval_result_json(design: &SizedDesign, wl_fingerprint: u64) -> String {
    Json::Obj(vec![
        ("topology".into(), Json::num(design.topology.index() as f64)),
        ("gain_db".into(), Json::num(design.performance.gain_db)),
        ("gbw_hz".into(), Json::num(design.performance.gbw_hz)),
        ("pm_deg".into(), Json::num(design.performance.pm_deg)),
        ("power_w".into(), Json::num(design.performance.power_w)),
        ("fom".into(), Json::num(design.fom)),
        ("feasible".into(), Json::Bool(design.feasible)),
        ("wl".into(), Json::str(format!("{wl_fingerprint:016x}"))),
    ])
    .encode()
    // lint: allow(panic, encode fails only on non-finite floats; Performance fields are finite by construction)
    .expect("measured performance is finite")
}

/// Renders a typed per-item error frame for `eval_batch`:
/// `{"error":{"kind":"...","detail":"..."}}`. The `kind` is the stable
/// wire contract ([`into_oa::EvalErrorKind::code`]); `detail` is
/// human-readable context.
pub fn eval_error_json(err: &EvalError) -> String {
    Json::Obj(vec![(
        "error".into(),
        Json::Obj(vec![
            ("kind".into(), Json::str(err.kind.code())),
            ("detail".into(), Json::str(err.detail.clone())),
        ]),
    )])
    .encode()
    // lint: allow(panic, an error frame holds only strings so encode cannot fail)
    .expect("strings encode")
}

/// Renders a size_opt result object.
pub fn size_opt_result_json(design: &Option<SizedDesign>, sims: usize, x: &[f64]) -> String {
    let mut fields = vec![
        ("found".into(), Json::Bool(design.is_some())),
        ("sims".into(), Json::num(sims as f64)),
    ];
    if let Some(d) = design {
        fields.push((
            "x".into(),
            Json::Arr(x.iter().map(|&v| Json::num(v)).collect()),
        ));
        fields.push(("topology".into(), Json::num(d.topology.index() as f64)));
        fields.push(("gain_db".into(), Json::num(d.performance.gain_db)));
        fields.push(("gbw_hz".into(), Json::num(d.performance.gbw_hz)));
        fields.push(("pm_deg".into(), Json::num(d.performance.pm_deg)));
        fields.push(("power_w".into(), Json::num(d.performance.power_w)));
        fields.push(("fom".into(), Json::num(d.fom)));
        fields.push(("feasible".into(), Json::Bool(d.feasible)));
    }
    Json::Obj(fields)
        .encode()
        // lint: allow(panic, encode fails only on non-finite floats; sized-design fields are finite by construction)
        .expect("measured performance is finite")
}

#[derive(Debug, Default)]
struct EndpointCounters {
    count: AtomicU64,
    errors: AtomicU64,
    micros: AtomicU64,
}

impl EndpointCounters {
    fn record(&self, started: Instant, ok: bool) {
        self.count.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.micros
            .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
    }

    fn json(&self) -> Json {
        Json::Obj(vec![
            (
                "count".into(),
                Json::num(self.count.load(Ordering::Relaxed) as f64),
            ),
            (
                "errors".into(),
                Json::num(self.errors.load(Ordering::Relaxed) as f64),
            ),
            (
                "micros".into(),
                Json::num(self.micros.load(Ordering::Relaxed) as f64),
            ),
        ])
    }
}

/// The evaluation service: one [`EvalHandle`] per spec, a persistent
/// [`Store`], a shared WL featurizer, and traffic counters. Shared
/// across worker threads behind an `Arc`.
pub struct Service {
    handles: Vec<EvalHandle>,
    store: Mutex<Store>,
    wl: Mutex<WlFeaturizer>,
    faults: Faults,
    shard: Option<ShardIdentity>,
    process_hash: u64,
    sims: AtomicU64,
    sessions: SessionManager,
    eval_counters: EndpointCounters,
    batch_counters: EndpointCounters,
    size_opt_counters: EndpointCounters,
    stats_counters: EndpointCounters,
    session_counters: EndpointCounters,
}

impl Service {
    /// Builds a service over an open store, with evaluators for every
    /// spec in Table I and fault injection disabled.
    pub fn new(store: Store) -> Service {
        Self::with_faults(store, Faults::none())
    }

    /// Like [`Service::new`], threading a fault plan through the
    /// per-item `eval_batch` path ([`oa_fault::Site::EvalItem`]). The
    /// store's own fault sites are configured when the store is opened
    /// ([`oa_store::Store::open_with_faults`]); pass the same handle for
    /// one shared schedule.
    pub fn with_faults(store: Store, faults: Faults) -> Service {
        let handles: Vec<EvalHandle> = Spec::all()
            .into_iter()
            .map(|spec| Evaluator::new(spec).into_handle())
            .collect();
        // lint: allow(panic, the specs vec is built non-empty two lines up)
        let process_hash = process_fingerprint(handles[0].evaluator());
        Service {
            handles,
            store: Mutex::new(store),
            wl: Mutex::new(WlFeaturizer::new()),
            faults,
            shard: None,
            process_hash,
            sims: AtomicU64::new(0),
            sessions: SessionManager::new(DEFAULT_SESSION_LIMIT),
            eval_counters: EndpointCounters::default(),
            batch_counters: EndpointCounters::default(),
            size_opt_counters: EndpointCounters::default(),
            stats_counters: EndpointCounters::default(),
            session_counters: EndpointCounters::default(),
        }
    }

    /// Tags this service with a shard identity (builder style). `stats`
    /// then reports a trailing `"shard":{"index":I,"count":N}` field.
    pub fn with_shard(mut self, shard: Option<ShardIdentity>) -> Service {
        self.shard = shard;
        self
    }

    /// Caps concurrently open sessions (builder style). New
    /// `open_session` requests beyond the cap fail with a typed
    /// `session_limit` error; re-opening an existing id never counts.
    pub fn with_session_limit(mut self, limit: usize) -> Service {
        self.sessions.set_limit(limit);
        self
    }

    /// Simulations actually run (store misses) since startup.
    pub fn sims(&self) -> u64 {
        self.sims.load(Ordering::Relaxed)
    }

    /// Live records currently in the store.
    pub fn store_len(&self) -> usize {
        let store = self.store.lock().unwrap_or_else(|p| p.into_inner());
        store.len()
    }

    /// Maps one request line to one response line (no trailing newline).
    /// Never panics on malformed input — every failure becomes an
    /// `"ok":false` response carrying the request id when one was
    /// readable.
    pub fn handle_line(&self, line: &str) -> String {
        let request = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => return error_response(&Json::Null, &format!("bad request JSON: {e}")),
        };
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        // Determinism audit: `started` flows only into
        // `EndpointCounters::record`, whose totals surface exclusively
        // through the `stats` endpoint — which the byte-determinism
        // contract (see module docs) explicitly excludes. No eval,
        // eval_batch or size_opt response byte depends on it.
        // lint: allow(wall_clock, elapsed time feeds stats counters only, never response bytes)
        let started = Instant::now();
        let (outcome, counters): (Result<String, OpError>, _) =
            match request.get("op").and_then(Json::as_str) {
                Some("eval") => (
                    self.op_eval(&request).map_err(OpError::Plain),
                    &self.eval_counters,
                ),
                Some("eval_batch") => (
                    self.op_eval_batch(&request).map_err(OpError::Plain),
                    &self.batch_counters,
                ),
                Some("size_opt") => (
                    self.op_size_opt(&request).map_err(OpError::Plain),
                    &self.size_opt_counters,
                ),
                Some("stats") => (Ok(self.op_stats()), &self.stats_counters),
                Some("open_session") => (self.op_open_session(&request), &self.session_counters),
                Some("step") => (self.op_step(&request), &self.session_counters),
                Some("session_stats") => (self.op_session_stats(&request), &self.session_counters),
                Some("close_session") => (self.op_close_session(&request), &self.session_counters),
                Some(other) => (
                    Err(OpError::plain(format!(
                        "unknown op '{other}' (expected eval, eval_batch, size_opt, stats, \
                         open_session, step, session_stats or close_session)"
                    ))),
                    &self.eval_counters,
                ),
                None => (
                    Err(OpError::plain("missing string field 'op'")),
                    &self.eval_counters,
                ),
            };
        counters.record(started, outcome.is_ok());
        match outcome {
            Ok(result) => {
                let id_txt = id.encode().unwrap_or_else(|_| "null".to_owned());
                format!("{{\"id\":{id_txt},\"ok\":true,\"result\":{result}}}")
            }
            Err(OpError::Plain(message)) => error_response(&id, &message),
            Err(OpError::Typed { kind, detail }) => typed_error_response(&id, kind, &detail),
        }
    }

    fn handle_for(&self, request: &Json) -> Result<&EvalHandle, String> {
        let name = request
            .get("spec")
            .and_then(Json::as_str)
            .ok_or("missing string field 'spec'")?;
        self.handles
            .iter()
            .find(|h| h.spec().name == name)
            .ok_or_else(|| format!("unknown spec '{name}' (expected S-1..S-5)"))
    }

    fn topology_from(value: Option<&Json>) -> Result<Topology, String> {
        let code = value
            .and_then(Json::as_u64)
            .ok_or("missing integer field 'topology'")?;
        Topology::from_index(code as usize).map_err(|e| format!("bad topology code {code}: {e}"))
    }

    fn x_from(value: Option<&Json>) -> Result<Vec<f64>, String> {
        let arr = value
            .and_then(Json::as_arr)
            .ok_or("missing array field 'x'")?;
        arr.iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| "non-numeric entry in 'x'".to_owned())
            })
            .collect()
    }

    /// Store-through single evaluation; shared by `eval` and
    /// `eval_batch`. Returns the result JSON text.
    fn eval_via_store(
        &self,
        handle: &EvalHandle,
        topology: &Topology,
        x: &[f64],
    ) -> Result<String, EvalError> {
        let key = EvalKey {
            kind: EvalKind::Eval,
            topology_code: topology.index() as u64,
            x_bits: x.iter().map(|v| v.to_bits()).collect(),
            spec_id: handle.spec().name.to_owned(),
            process_hash: self.process_hash,
            seed: 0,
        }
        .encode();
        if let Some(bytes) = self.store_get(&key) {
            return String::from_utf8(bytes)
                .map_err(|_| EvalError::internal("corrupt store value"));
        }
        let design = handle.eval(topology, x).map_err(EvalError::from)?;
        self.sims.fetch_add(1, Ordering::Relaxed);
        let fingerprint = {
            let mut wl = self.wl.lock().unwrap_or_else(|p| p.into_inner());
            wl_fingerprint(&mut wl, topology)
        };
        let result = eval_result_json(&design, fingerprint);
        self.store_put(&key, result.as_bytes());
        Ok(result)
    }

    fn op_eval(&self, request: &Json) -> Result<String, String> {
        let handle = self.handle_for(request)?;
        let topology = Self::topology_from(request.get("topology"))?;
        let x = Self::x_from(request.get("x"))?;
        // The top-level `eval` error is the plain detail text; typed
        // kinds are a per-item concern of `eval_batch`.
        self.eval_via_store(handle, &topology, &x)
            .map_err(|e| e.detail)
    }

    fn op_eval_batch(&self, request: &Json) -> Result<String, String> {
        let handle = self.handle_for(request)?;
        let items = request
            .get("items")
            .and_then(Json::as_arr)
            .ok_or("missing array field 'items'")?;
        let mut parts = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            // Graceful degradation: items evaluate independently, and a
            // failed item — malformed, unsimulatable, or failed on
            // purpose by the fault plan — becomes a typed error frame
            // while its siblings still return results.
            let part = if let Decision::FailItem = self.faults.decide(Site::EvalItem, i as u64) {
                Err(EvalError::injected(format!(
                    "batch item {i} failed by the fault plan"
                )))
            } else {
                Self::topology_from(item.get("topology"))
                    .and_then(|t| Self::x_from(item.get("x")).map(|x| (t, x)))
                    .map_err(EvalError::bad_request)
                    .and_then(|(t, x)| self.eval_via_store(handle, &t, &x))
            };
            match part {
                Ok(result) => parts.push(result),
                Err(err) => parts.push(eval_error_json(&err)),
            }
        }
        Ok(format!(
            "{{\"n\":{},\"items\":[{}]}}",
            parts.len(),
            parts.join(",")
        ))
    }

    fn op_size_opt(&self, request: &Json) -> Result<String, String> {
        let handle = self.handle_for(request)?;
        let topology = Self::topology_from(request.get("topology"))?;
        let seed = request.get("seed").and_then(Json::as_u64).unwrap_or(0);
        let n_init = request
            .get("n_init")
            .and_then(Json::as_u64)
            .unwrap_or(DEFAULT_SIZE_OPT_INIT as u64) as usize;
        let n_iter = request
            .get("n_iter")
            .and_then(Json::as_u64)
            .unwrap_or(DEFAULT_SIZE_OPT_ITER as u64) as usize;
        self.size_opt_via_store(handle, &topology, seed, n_init, n_iter)
    }

    /// Store-through sizing-BO run; shared by `size_opt` and the
    /// session `step` evaluation. Returns the result JSON text — the
    /// exact bytes stored, so a step replayed over its own records
    /// reconstructs identical observations.
    fn size_opt_via_store(
        &self,
        handle: &EvalHandle,
        topology: &Topology,
        seed: u64,
        n_init: usize,
        n_iter: usize,
    ) -> Result<String, String> {
        let key = EvalKey {
            kind: EvalKind::SizeOpt,
            topology_code: topology.index() as u64,
            x_bits: vec![n_init as u64, n_iter as u64],
            spec_id: handle.spec().name.to_owned(),
            process_hash: self.process_hash,
            seed,
        }
        .encode();
        if let Some(bytes) = self.store_get(&key) {
            return String::from_utf8(bytes).map_err(|_| "corrupt store value".to_owned());
        }
        let (design, sims) = handle.size_opt(topology, seed, n_init, n_iter);
        self.sims.fetch_add(sims as u64, Ordering::Relaxed);
        let x = design
            .as_ref()
            .map(|d| oa_circuit::ParamSpace::for_topology(&d.topology).encode(&d.values))
            .unwrap_or_default();
        let result = size_opt_result_json(&design, sims, &x);
        self.store_put(&key, result.as_bytes());
        Ok(result)
    }

    /// Warm-start observations for a session targeting `target`: every
    /// well-formed `size_opt` record in the store whose spec is in
    /// `family` (and is **not** the target — a session's own appends
    /// must never change its replay), re-scored under the target spec.
    /// Order follows store key order, so the scan is deterministic for
    /// a given store snapshot. Public so the warm-start differential
    /// test can state its claim against the exact serving scan.
    pub fn warm_observations(
        &self,
        target: &str,
        family: &[String],
    ) -> Vec<(Topology, TopoObservation)> {
        let Some(spec) = self
            .handles
            .iter()
            .find(|h| h.spec().name == target)
            .map(|h| *h.spec())
        else {
            return Vec::new();
        };
        let store = self.store.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = Vec::new();
        for (key_bytes, value) in store.iter() {
            let Some(key) = EvalKey::decode(key_bytes) else {
                continue;
            };
            if key.kind != EvalKind::SizeOpt
                || key.process_hash != self.process_hash
                || key.spec_id == target
                || !family.contains(&key.spec_id)
            {
                continue;
            }
            let Ok(text) = std::str::from_utf8(value) else {
                continue;
            };
            let Ok(record) = Json::parse(text) else {
                continue;
            };
            let (Some(observation), _) = observation_from_size_opt(&spec, &record) else {
                continue;
            };
            let Ok(topology) = Topology::from_index(key.topology_code as usize) else {
                continue;
            };
            out.push((topology, observation));
        }
        out
    }

    fn op_open_session(&self, request: &Json) -> Result<String, OpError> {
        let params = OpenParams::parse(request)?;
        for name in &params.spec_names {
            if !self.handles.iter().any(|h| h.spec().name == name) {
                return Err(OpError::spec_invalid(format!(
                    "unknown spec '{name}' (expected S-1..S-5)"
                )));
            }
        }
        let Some(target) = params.spec_names.first().cloned() else {
            return Err(OpError::spec_invalid("'specs' must be non-empty"));
        };
        let config = TopoBoConfig {
            n_init: params.n_init,
            n_iter: 0, // sessions are open-ended; the driver budget is unused
            pool_size: params.pool_size,
            mutation_fraction: params.mutation_fraction,
            elite_count: params.elite_count,
            wl_levels: params.wl_levels,
            seed: params.seed,
        };
        let mut bo = BoSession::new(config);
        let mut warm = 0usize;
        let family = params.spec_names.get(1..).unwrap_or(&[]);
        if params.warm_start && !family.is_empty() {
            for (topology, observation) in self.warm_observations(&target, family) {
                bo.seed_observation(topology, observation);
                warm += 1;
            }
        }
        let target_idx = self
            .handles
            .iter()
            .position(|h| h.spec().name == target)
            .ok_or_else(|| OpError::plain("internal: target spec vanished"))?;
        let core = SessionCore {
            spec_names: params.spec_names,
            target: target_idx,
            seed: params.seed,
            size_init: params.size_init,
            size_iter: params.size_iter,
            warm,
            steps: 0,
            bo,
        };
        let result = open_result_json(params.session, &core);
        self.sessions.open(params.session, core)?;
        Ok(result)
    }

    fn op_step(&self, request: &Json) -> Result<String, OpError> {
        let session = session_id(request)?;
        let slot = self
            .sessions
            .get(session)
            .ok_or_else(|| OpError::unknown_session(session))?;
        // The fault decision comes before any state mutation: a failed
        // step leaves the session exactly as it was, so the client's
        // retry re-runs the same iterate and the transcript stays
        // byte-identical to an uninjected run.
        if let Decision::FailItem = self.faults.decide(Site::SessionStep, session) {
            return Err(OpError::injected(format!(
                "session {session} step failed by the fault plan"
            )));
        }
        let mut core = slot.lock().unwrap_or_else(|p| p.into_inner());
        let phase = if core.bo.in_init_phase() {
            "init"
        } else {
            "bo"
        };
        core.steps += 1;
        let step = core.steps;
        self.sessions.record_step();
        let Some(topology) = core.bo.propose_default() else {
            return Ok(step_result_json(session, step, phase, None, &core));
        };
        let handle = self
            .handles
            .get(core.target)
            .ok_or_else(|| OpError::plain("internal: session spec handle missing"))?;
        let result = self
            .size_opt_via_store(handle, &topology, core.seed, core.size_init, core.size_iter)
            .map_err(OpError::Plain)?;
        let record = Json::parse(&result)
            .map_err(|e| OpError::plain(format!("corrupt store value: {e}")))?;
        let (observation, sims) = observation_from_size_opt(handle.spec(), &record);
        core.bo.observe(topology, observation.clone());
        Ok(step_result_json(
            session,
            step,
            phase,
            Some((topology, observation.as_ref(), sims)),
            &core,
        ))
    }

    fn op_session_stats(&self, request: &Json) -> Result<String, OpError> {
        let session = session_id(request)?;
        let slot = self
            .sessions
            .get(session)
            .ok_or_else(|| OpError::unknown_session(session))?;
        let core = slot.lock().unwrap_or_else(|p| p.into_inner());
        Ok(session_stats_json(session, &core))
    }

    fn op_close_session(&self, request: &Json) -> Result<String, OpError> {
        let session = session_id(request)?;
        let slot = self
            .sessions
            .close(session)
            .ok_or_else(|| OpError::unknown_session(session))?;
        let core = slot.lock().unwrap_or_else(|p| p.into_inner());
        Ok(close_result_json(session, &core))
    }

    /// Symbolic-plan cache counters summed over every spec's evaluator
    /// (the caches are per-evaluator; the capacity story is their total).
    fn plan_cache_totals(&self) -> PlanCacheStats {
        self.handles.iter().map(|h| h.plan_cache_stats()).fold(
            PlanCacheStats::default(),
            |acc, s| PlanCacheStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
            },
        )
    }

    fn op_stats(&self) -> String {
        let store = {
            let store = self.store.lock().unwrap_or_else(|p| p.into_inner());
            store.stats()
        };
        let wl = {
            let wl = self.wl.lock().unwrap_or_else(|p| p.into_inner());
            wl.cache_stats()
        };
        let plan = self.plan_cache_totals();
        let mut fields = vec![
            (
                "store".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::num(store.hits as f64)),
                    ("misses".into(), Json::num(store.misses as f64)),
                    ("live_records".into(), Json::num(store.live_records as f64)),
                    (
                        "appended_records".into(),
                        Json::num(store.appended_records as f64),
                    ),
                    ("log_bytes".into(), Json::num(store.log_bytes as f64)),
                    (
                        "recovered_tail_bytes".into(),
                        Json::num(store.recovered_tail_bytes as f64),
                    ),
                ]),
            ),
            (
                "wl".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::num(wl.hits as f64)),
                    ("misses".into(), Json::num(wl.misses as f64)),
                ]),
            ),
            (
                "plan".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::num(plan.hits as f64)),
                    ("misses".into(), Json::num(plan.misses as f64)),
                ]),
            ),
            ("sims".into(), Json::num(self.sims() as f64)),
            (
                "endpoints".into(),
                Json::Obj(vec![
                    ("eval".into(), self.eval_counters.json()),
                    ("eval_batch".into(), self.batch_counters.json()),
                    ("size_opt".into(), self.size_opt_counters.json()),
                    ("stats".into(), self.stats_counters.json()),
                    ("session".into(), self.session_counters.json()),
                ]),
            ),
            ("sessions".into(), self.sessions.stats_json()),
        ];
        // Appended last so an un-sharded instance's stats bytes are
        // exactly the pre-shard-era shape (the golden fixture relies on
        // this, and the router strips it before summing).
        if let Some(shard) = self.shard {
            fields.push((
                "shard".into(),
                Json::Obj(vec![
                    ("index".into(), Json::num(shard.index as f64)),
                    ("count".into(), Json::num(shard.count as f64)),
                ]),
            ));
        }
        Json::Obj(fields)
            .encode()
            // lint: allow(panic, counters are u64/f64 means of finite samples; never NaN or infinite)
            .expect("counters are finite")
    }

    fn store_get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let store = self.store.lock().unwrap_or_else(|p| p.into_inner());
        store.get(key)
    }

    fn store_put(&self, key: &[u8], value: &[u8]) {
        // The lock covers only the append, never a simulation. Two
        // concurrent misses on the same key both simulate and both
        // append; the records are byte-identical, so last-write-wins is
        // harmless and responses stay deterministic.
        let mut store = self.store.lock().unwrap_or_else(|p| p.into_inner());
        if let Err(e) = store.put(key, value) {
            // The store is an optimization; serving continues without it.
            eprintln!("oa-serve: store append failed: {e}");
        }
    }
}

/// Renders the canonical `{"id":ID,"ok":false,"error":"msg"}` frame.
/// Public because `oa-router` answers protocol-level failures (a line
/// that doesn't parse, load shedding) locally and must produce the
/// byte-exact shape a shard would.
pub fn error_response(id: &Json, message: &str) -> String {
    let id_txt = id.encode().unwrap_or_else(|_| "null".to_owned());
    // lint: allow(panic, Json::str never contains floats so encode cannot fail)
    let msg = Json::str(message).encode().expect("strings encode");
    format!("{{\"id\":{id_txt},\"ok\":false,\"error\":{msg}}}")
}

/// Renders a typed `{"id":ID,"ok":false,"error":{"kind":K,"detail":D}}`
/// frame — the session-op failure shape (`unknown_session`,
/// `session_limit`, `spec_invalid`, `injected`). Public for the same
/// reason as [`error_response`]: clients and the router match on the
/// exact bytes a shard would produce.
pub fn typed_error_response(id: &Json, kind: &str, detail: &str) -> String {
    let id_txt = id.encode().unwrap_or_else(|_| "null".to_owned());
    let err = Json::Obj(vec![
        ("kind".into(), Json::str(kind)),
        ("detail".into(), Json::str(detail)),
    ])
    .encode()
    // lint: allow(panic, an error object holds only strings so encode cannot fail)
    .expect("strings encode");
    format!("{{\"id\":{id_txt},\"ok\":false,\"error\":{err}}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_circuit::ParamSpace;
    use std::path::PathBuf;

    fn temp_store(tag: &str) -> (Service, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "oa_serve_svc_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("results.log");
        (Service::new(Store::open(&path).unwrap()), dir)
    }

    fn eval_line(id: u64, topology: usize, x: &[f64]) -> String {
        let xs: Vec<String> = x.iter().map(|v| format!("{v:.17e}")).collect();
        format!(
            "{{\"id\":{id},\"op\":\"eval\",\"spec\":\"S-1\",\"topology\":{topology},\"x\":[{}]}}",
            xs.join(",")
        )
    }

    #[test]
    fn eval_matches_direct_evaluator_and_hits_store_on_repeat() {
        let (service, dir) = temp_store("eval");
        let t = Topology::bare_cascade();
        let x = vec![0.5; ParamSpace::for_topology(&t).dim()];

        let first = service.handle_line(&eval_line(1, t.index(), &x));
        assert_eq!(service.sims(), 1);
        let second = service.handle_line(&eval_line(1, t.index(), &x));
        assert_eq!(
            second, first,
            "store-served response must be byte-identical"
        );
        assert_eq!(service.sims(), 1, "repeat must not simulate");

        // The measured numbers equal a direct in-process evaluation.
        let direct = Evaluator::new(Spec::s1()).simulate_sized(&t, &x).unwrap();
        let parsed = Json::parse(&first).unwrap();
        let result = parsed.get("result").unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            result.get("gain_db").unwrap().as_f64().unwrap().to_bits(),
            direct.performance.gain_db.to_bits()
        );
        assert_eq!(
            result.get("fom").unwrap().as_f64().unwrap().to_bits(),
            direct.fom.to_bits()
        );
        assert_eq!(
            result.get("feasible").unwrap().as_bool().unwrap(),
            direct.feasible
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_requests_get_error_responses() {
        let (service, dir) = temp_store("bad");
        for (line, expect_id) in [
            ("not json at all", "null"),
            ("{\"id\":9}", "9"),
            ("{\"id\":10,\"op\":\"warp\"}", "10"),
            ("{\"id\":11,\"op\":\"eval\",\"spec\":\"S-9\"}", "11"),
            (
                "{\"id\":12,\"op\":\"eval\",\"spec\":\"S-1\",\"topology\":4,\"x\":[0.5]}",
                "12", // wrong dimension
            ),
            (
                "{\"id\":13,\"op\":\"eval\",\"spec\":\"S-1\",\"topology\":99999999,\"x\":[]}",
                "13", // out-of-range topology
            ),
        ] {
            let resp = service.handle_line(line);
            let parsed = Json::parse(&resp).expect("error responses are valid JSON");
            assert_eq!(parsed.get("ok"), Some(&Json::Bool(false)), "{line}");
            assert_eq!(parsed.get("id").unwrap().encode().unwrap(), expect_id);
            assert!(parsed.get("error").unwrap().as_str().is_some());
        }
        assert_eq!(service.sims(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_mixes_results_and_per_item_errors() {
        let (service, dir) = temp_store("batch");
        let t = Topology::bare_cascade();
        let dim = ParamSpace::for_topology(&t).dim();
        let good = format!(
            "{{\"topology\":{},\"x\":[{}]}}",
            t.index(),
            vec!["0.5"; dim].join(",")
        );
        let bad = format!("{{\"topology\":{},\"x\":[0.5]}}", t.index());
        let line =
            format!("{{\"id\":1,\"op\":\"eval_batch\",\"spec\":\"S-2\",\"items\":[{good},{bad}]}}");
        let resp = service.handle_line(&line);
        let parsed = Json::parse(&resp).unwrap();
        let items = parsed.get("result").unwrap().get("items").unwrap();
        let items = items.as_arr().unwrap();
        assert_eq!(items.len(), 2);
        assert!(items[0].get("fom").is_some());
        let error = items[1].get("error").unwrap();
        assert_eq!(error.get("kind").unwrap().as_str(), Some("bad_request"));
        assert!(error.get("detail").unwrap().as_str().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_item_faults_degrade_batches_gracefully() {
        use oa_fault::{FaultConfig, Faults};
        let dir = std::env::temp_dir().join(format!(
            "oa_serve_svc_inject_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        // Every item fails by plan: the batch still succeeds at the
        // protocol level, each item carrying a typed `injected` error.
        let config = FaultConfig {
            item_error_per_mille: 1000,
            ..FaultConfig::default()
        };
        let service = Service::with_faults(
            Store::open(dir.join("results.log")).unwrap(),
            Faults::seeded(7, config),
        );
        let t = Topology::bare_cascade();
        let dim = ParamSpace::for_topology(&t).dim();
        let item = format!(
            "{{\"topology\":{},\"x\":[{}]}}",
            t.index(),
            vec!["0.5"; dim].join(",")
        );
        let line = format!(
            "{{\"id\":4,\"op\":\"eval_batch\",\"spec\":\"S-1\",\"items\":[{item},{item}]}}"
        );
        let resp = service.handle_line(&line);
        let parsed = Json::parse(&resp).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        let items = parsed.get("result").unwrap().get("items").unwrap();
        for item in items.as_arr().unwrap() {
            let error = item.get("error").unwrap();
            assert_eq!(error.get("kind").unwrap().as_str(), Some("injected"));
        }
        assert_eq!(service.sims(), 0, "failed-by-plan items must not simulate");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_opt_is_seed_deterministic_and_cached() {
        let (service, dir) = temp_store("sizeopt");
        let line = |id: u64, seed: u64| {
            format!(
                "{{\"id\":{id},\"op\":\"size_opt\",\"spec\":\"S-1\",\"topology\":4,\
                 \"seed\":{seed},\"n_init\":3,\"n_iter\":2}}"
            )
        };
        let a = service.handle_line(&line(1, 7));
        let sims_after_first = service.sims();
        assert!(sims_after_first > 0);
        let b = service.handle_line(&line(1, 7));
        assert_eq!(a, b, "same seed must serve from store");
        assert_eq!(service.sims(), sims_after_first);
        // A different seed is a different key: it must re-run the
        // optimizer (a store miss), even if it lands on the same optimum.
        let _ = service.handle_line(&line(1, 8));
        assert!(
            service.sims() > sims_after_first,
            "different seed must miss the store"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_reports_traffic() {
        let (service, dir) = temp_store("stats");
        let t = Topology::bare_cascade();
        let x = vec![0.5; ParamSpace::for_topology(&t).dim()];
        let _ = service.handle_line(&eval_line(1, t.index(), &x));
        let _ = service.handle_line(&eval_line(2, t.index(), &x));
        let resp = service.handle_line("{\"id\":3,\"op\":\"stats\"}");
        let parsed = Json::parse(&resp).unwrap();
        let result = parsed.get("result").unwrap();
        let store = result.get("store").unwrap();
        assert_eq!(store.get("hits").unwrap().as_f64(), Some(1.0));
        assert_eq!(store.get("misses").unwrap().as_f64(), Some(1.0));
        assert_eq!(result.get("sims").unwrap().as_f64(), Some(1.0));
        let wl = result.get("wl").unwrap();
        assert_eq!(wl.get("misses").unwrap().as_f64(), Some(1.0));
        // One simulation → one symbolic analysis; the store-served repeat
        // never touches the simulator, so the plan counters stay put.
        let plan = result.get("plan").unwrap();
        assert_eq!(plan.get("misses").unwrap().as_f64(), Some(1.0));
        assert_eq!(plan.get("hits").unwrap().as_f64(), Some(0.0));
        let eval = result.get("endpoints").unwrap().get("eval").unwrap();
        assert_eq!(eval.get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(eval.get("errors").unwrap().as_f64(), Some(0.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn results_survive_service_restart_byte_identically() {
        let (service, dir) = temp_store("restart");
        let path = {
            let store = service.store.lock().unwrap();
            store.path().to_path_buf()
        };
        let t = Topology::bare_cascade();
        let x = vec![0.25; ParamSpace::for_topology(&t).dim()];
        let first = service.handle_line(&eval_line(5, t.index(), &x));
        drop(service);

        let revived = Service::new(Store::open(&path).unwrap());
        let second = revived.handle_line(&eval_line(5, t.index(), &x));
        assert_eq!(second, first);
        assert_eq!(revived.sims(), 0, "restart must serve from the store");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
