//! **oa-serve** — a concurrent evaluation service for the INTO-OA
//! design space.
//!
//! The ROADMAP's north star is serving heavy traffic; this crate is the
//! serving layer. It exposes the 30 625-topology op-amp space behind a
//! uniform network API (in the spirit of circuit-benchmark suites like
//! CktGNN's OCB) so many optimizers can hit one evaluator concurrently
//! and share one persistent result store:
//!
//! * **Wire protocol** — newline-delimited JSON over TCP ([`json`] is
//!   hand-rolled and property-tested; the crate is std-only). Requests
//!   carry an `id` echoed in the response, so clients pipeline; see
//!   DESIGN.md §7 for the schema.
//! * **Endpoints** — `eval` (simulate one sized topology), `eval_batch`,
//!   `size_opt` (sizing BO under an explicit per-request seed), `stats`,
//!   and the session family `open_session` / `step` / `session_stats` /
//!   `close_session` (multi-tenant topology-BO sessions; DESIGN.md §13).
//! * **Concurrency** — requests flow through a bounded queue into an
//!   [`oa_par::Pool`]; overload becomes TCP backpressure.
//! * **Persistence** — results are served from [`oa_store`] when the
//!   evaluation key matches; only misses simulate. Same request + same
//!   seed → byte-identical response, across restarts.
//! * **Failure model** — a seeded [`oa_fault::Faults`] plan
//!   ([`ServerConfig::faults`], `oa-serve --fault-seed`) injects dropped
//!   and stalled connections, mid-frame disconnects, worker panics and
//!   per-item batch errors; clients harden with [`ClientConfig`]
//!   (timeouts + deterministic bounded retry). See DESIGN.md §9.
//!
//! Binaries: `oa-serve` (daemon) and `oa-cli` (submit request files,
//! print TSV). In-process use:
//!
//! ```no_run
//! use oa_serve::{serve, Client, ServerConfig};
//!
//! let server = serve(ServerConfig::loopback()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let line = oa_serve::request::eval(1, "S-1", 0, &[0.5; 4]);
//! let response = client.request(&line).unwrap();
//! println!("{response}");
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod client;
pub mod json;
mod server;
mod service;
mod session;
pub mod wire_kinds;

pub use client::{request, resolve, Client, ClientConfig, SessionDriver};
pub use json::{Json, JsonError};
pub use server::{default_store_dir, serve, Server, ServerConfig};
pub use service::{
    error_response, eval_error_json, eval_result_json, process_fingerprint, size_opt_result_json,
    typed_error_response, wl_fingerprint, Service, ShardIdentity,
};
pub use session::{observation_from_perf, DEFAULT_SESSION_LIMIT};
