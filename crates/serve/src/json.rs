//! Minimal, dependency-free JSON for the wire protocol.
//!
//! Hand-rolled on purpose: the serving layer is std-only, and the subset
//! we need is small — but it must be *exact*. The two properties the
//! protocol leans on:
//!
//! * **Determinism** — object keys keep insertion order, numbers have a
//!   single canonical rendering, so equal values encode to equal bytes.
//!   The "same request + same seed → byte-identical response" contract
//!   reduces to value equality.
//! * **Float fidelity** — non-integral numbers are written with 17+
//!   significant digits (`{:.17e}`, the TSV cache convention), which
//!   round-trips every finite `f64` bit-exactly. Integral values within
//!   `±2^53` are written as plain integers. `NaN`/`±Inf` have no JSON
//!   rendering and are rejected at encode time; numeric literals that
//!   overflow to infinity are rejected at parse time.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, duplicate keys are not rejected but
    /// lookups return the first match.
    Obj(Vec<(String, Json)>),
}

/// Encoding or parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Attempted to encode `NaN` or `±Inf` (no JSON rendering exists).
    NonFiniteNumber,
    /// Malformed input at byte `pos`.
    Syntax {
        /// Byte offset of the failure.
        pos: usize,
        /// What the parser expected there.
        expected: &'static str,
    },
    /// Nesting beyond [`MAX_DEPTH`].
    TooDeep,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::NonFiniteNumber => write!(f, "NaN/Inf cannot be encoded as JSON"),
            JsonError::Syntax { pos, expected } => {
                write!(f, "JSON syntax error at byte {pos}: expected {expected}")
            }
            JsonError::TooDeep => write!(f, "JSON nesting exceeds depth limit"),
        }
    }
}

impl std::error::Error for JsonError {}

/// Maximum nesting depth accepted by the parser (the protocol needs 4).
pub const MAX_DEPTH: usize = 128;

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience number constructor.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// First value under `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Structural equality with bit-exact number comparison (`-0.0 ≠
    /// 0.0`, distinguishes what [`PartialEq`] on `f64` cannot). This is
    /// the equality the round-trip property is stated in.
    pub fn bit_eq(&self, other: &Json) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a.to_bits() == b.to_bits(),
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.bit_eq(y))
            }
            (Json::Obj(a), Json::Obj(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|((ka, va), (kb, vb))| ka == kb && va.bit_eq(vb))
            }
            _ => false,
        }
    }

    /// Encodes to canonical JSON text (no insignificant whitespace).
    ///
    /// # Errors
    ///
    /// [`JsonError::NonFiniteNumber`] if any number is `NaN` or `±Inf`.
    pub fn encode(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.write(&mut out)?;
        Ok(out)
    }

    fn write(&self, out: &mut String) -> Result<(), JsonError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out)?,
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out)?;
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }

    /// Parses one JSON value; the whole input must be consumed (trailing
    /// whitespace allowed).
    ///
    /// # Errors
    ///
    /// [`JsonError::Syntax`] on malformed input (including `NaN`/`Inf`
    /// literals, which JSON does not have, and numeric literals that
    /// overflow `f64`), [`JsonError::TooDeep`] past [`MAX_DEPTH`].
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::Syntax {
                pos: p.pos,
                expected: "end of input",
            });
        }
        Ok(value)
    }
}

/// Canonical number rendering: integral values in `±2^53` as plain
/// integers (`-0.0` keeps its sign as `-0`), everything else as `{:.17e}`.
fn write_number(n: f64, out: &mut String) -> Result<(), JsonError> {
    if !n.is_finite() {
        return Err(JsonError::NonFiniteNumber);
    }
    if n == 0.0 {
        out.push_str(if n.is_sign_negative() { "-0" } else { "0" });
    } else if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n:.17e}");
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, expected: &'static str) -> JsonError {
        JsonError::Syntax {
            pos: self.pos,
            expected,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn literal(&mut self, lit: &'static [u8], expected: &'static str) -> Result<(), JsonError> {
        // lint: allow(panic, self.pos <= self.bytes.len() is a parser invariant; range slice cannot overrun)
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(expected))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep);
        }
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal(b"null", "null").map(|_| Json::Null),
            Some(b't') => self.literal(b"true", "true").map(|_| Json::Bool(true)),
            Some(b'f') => self.literal(b"false", "false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("',' or ']'"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("object key string"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("':'"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            if !self.eat(b',') {
                return Err(self.err("',' or '}'"));
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain UTF-8.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so slices on char boundaries are
                // valid UTF-8; '"' and '\\' are boundaries.
                out.push_str(
                    // lint: allow(panic, start <= pos <= len by the scan loop above; range slice cannot overrun)
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("valid UTF-8"))?,
                );
            }
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(self.err("closing '\"'")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or(self.err("escape character"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: must be followed by \uXXXX low.
                    if !(self.eat(b'\\') && self.eat(b'u')) {
                        return Err(self.err("low surrogate escape"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("low surrogate value"));
                    }
                    let combined = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(combined).ok_or(self.err("valid code point"))?
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("high surrogate before low"));
                } else {
                    char::from_u32(hi).ok_or(self.err("valid code point"))?
                };
                out.push(c);
            }
            _ => return Err(self.err("valid escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let b = *self.bytes.get(self.pos).ok_or(self.err("4 hex digits"))?;
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("hex digit")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        // Integer part: 0, or nonzero digit followed by digits.
        match self.bytes.get(self.pos) {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("digit")),
        }
        if self.eat(b'.') {
            if !matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                return Err(self.err("fraction digit"));
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                return Err(self.err("exponent digit"));
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // lint: allow(panic, slice spans only ASCII digit/sign bytes just scanned, so bounds and UTF-8 both hold)
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        let n: f64 = text.parse().map_err(|_| JsonError::Syntax {
            pos: start,
            expected: "a number",
        })?;
        // A syntactically valid literal like 1e999 overflows to Inf;
        // the protocol rejects it rather than smuggling Inf into values.
        if !n.is_finite() {
            return Err(JsonError::Syntax {
                pos: start,
                expected: "a finite number",
            });
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.encode().unwrap()).unwrap()
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::num(0.0),
            Json::num(-0.0),
            Json::num(1.0),
            Json::num(-17.0),
            Json::num(0.1 + 0.2),
            Json::num(1e-300),
            Json::num(f64::MIN_POSITIVE / 8.0), // subnormal
            Json::num(9_007_199_254_740_992.0),
            Json::num(9_007_199_254_740_994.0), // > 2^53, forced to e-notation
            Json::str(""),
            Json::str("plain"),
            Json::str("esc \" \\ \n \r \t \u{08} \u{0C} \u{1b} ü 円 🦀"),
        ] {
            assert!(roundtrip(&v).bit_eq(&v), "{v:?}");
        }
    }

    #[test]
    fn canonical_number_forms() {
        assert_eq!(Json::num(3.0).encode().unwrap(), "3");
        assert_eq!(Json::num(-0.0).encode().unwrap(), "-0");
        assert_eq!(Json::num(0.5).encode().unwrap(), "5.00000000000000000e-1");
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Json::Obj(vec![
            ("id".into(), Json::num(7.0)),
            (
                "x".into(),
                Json::Arr(vec![Json::num(0.25), Json::Null, Json::str("s")]),
            ),
            (
                "inner".into(),
                Json::Obj(vec![("feasible".into(), Json::Bool(true))]),
            ),
        ]);
        assert!(roundtrip(&v).bit_eq(&v));
        assert_eq!(
            v.encode().unwrap(),
            r#"{"id":7,"x":[2.50000000000000000e-1,null,"s"],"inner":{"feasible":true}}"#
        );
    }

    #[test]
    fn nan_and_inf_are_rejected_both_ways() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Json::num(bad).encode(), Err(JsonError::NonFiniteNumber));
        }
        for text in ["NaN", "Infinity", "-Infinity", "nan", "1e999", "-1e999"] {
            assert!(Json::parse(text).is_err(), "{text} must not parse");
        }
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01",
            "1.",
            "+1",
            "- 1",
            "\"bad \\q escape\"",
            "\"\\ud800\"", // lone high surrogate
            "\"\\udc00\"", // lone low surrogate
            "[1] trailing",
            "tru",
            "nulll",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} must not parse");
        }
    }

    #[test]
    fn standard_json_with_whitespace_parses() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5e1 , true ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(25.0)
        );
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(Json::parse("\"\\ud83e\\udd80\"").unwrap(), Json::str("🦀"));
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert_eq!(Json::parse(&deep), Err(JsonError::TooDeep));
    }

    #[test]
    fn as_u64_bounds() {
        assert_eq!(Json::num(5.0).as_u64(), Some(5));
        assert_eq!(Json::num(-1.0).as_u64(), None);
        assert_eq!(Json::num(1.5).as_u64(), None);
        assert_eq!(Json::num(9.007_199_254_740_992e15).as_u64(), Some(1 << 53));
    }
}
