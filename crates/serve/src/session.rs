//! Session-scoped BO state: registry, per-session cores, and the
//! request/response shapes of the four session ops.
//!
//! A session is one in-flight topology optimization
//! ([`oa_bo::BoSession`]) owned by the node that opened it. The
//! [`SessionManager`] maps client-chosen session ids to cores; each
//! core sits behind **its own** mutex, so one session's `step`
//! (propose → eval → GP update, potentially seconds) never blocks
//! another session or the registry. The registry lock is held only for
//! map lookups, never across an evaluation.
//!
//! ## Determinism contract
//!
//! A session's response stream is a pure function of the `open_session`
//! request and the store prefix visible at open time: the BO state is
//! seeded from the request, evaluations go through the store-backed
//! `size_opt` path, and the warm-start scan excludes the target spec's
//! own records — so a session replayed over the store its own steps
//! appended to reproduces byte-identical frames. This is what lets a
//! client resume a session on another shard (or a restarted one) by
//! replaying its request prefix.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use into_oa::Spec;
use oa_bo::{BoSession, TopoObservation};
use oa_circuit::Topology;
use oa_sim::OpAmpPerformance;

use crate::json::Json;

/// Default cap on concurrently open sessions per node. Each session
/// holds GP training data and a WL label dictionary; the cap bounds
/// memory and exists so a runaway client cannot exhaust the node.
pub const DEFAULT_SESSION_LIMIT: usize = 64;
/// Serving default for the session's random-init draw count.
pub(crate) const DEFAULT_SESSION_N_INIT: usize = 4;
/// Serving default for the per-iteration candidate pool.
pub(crate) const DEFAULT_SESSION_POOL: usize = 64;
/// Serving default sizing-BO init draws per step (cheaper than the
/// paper's offline budget — a session pays it on every step).
pub(crate) const DEFAULT_SESSION_SIZE_INIT: usize = 4;
/// Serving default sizing-BO iterations per step.
pub(crate) const DEFAULT_SESSION_SIZE_ITER: usize = 8;
/// Hard cap on the declared spec family (5 real specs exist; the cap
/// bounds open-time work on hostile input).
const MAX_SESSION_SPECS: usize = 8;

/// A failed session (or classic) op: either the legacy plain-string
/// error or a typed `{"kind":...,"detail":...}` error object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum OpError {
    /// Rendered as `"error":"<message>"` — the pre-session wire shape.
    Plain(String),
    /// Rendered as `"error":{"kind":K,"detail":D}`.
    Typed {
        /// Stable machine-readable kind (`unknown_session`,
        /// `session_limit`, `spec_invalid`, `injected`).
        kind: &'static str,
        /// Human-readable context.
        detail: String,
    },
}

impl OpError {
    pub(crate) fn plain(message: impl Into<String>) -> OpError {
        OpError::Plain(message.into())
    }

    pub(crate) fn unknown_session(session: u64) -> OpError {
        OpError::Typed {
            kind: crate::wire_kinds::UNKNOWN_SESSION,
            detail: format!("session {session} is not open on this node"),
        }
    }

    pub(crate) fn session_limit(limit: usize) -> OpError {
        OpError::Typed {
            kind: crate::wire_kinds::SESSION_LIMIT,
            detail: format!("session limit reached ({limit} open)"),
        }
    }

    pub(crate) fn spec_invalid(detail: impl Into<String>) -> OpError {
        OpError::Typed {
            kind: crate::wire_kinds::SPEC_INVALID,
            detail: detail.into(),
        }
    }

    pub(crate) fn injected(detail: impl Into<String>) -> OpError {
        OpError::Typed {
            kind: crate::wire_kinds::INJECTED,
            detail: detail.into(),
        }
    }
}

impl From<String> for OpError {
    fn from(message: String) -> OpError {
        OpError::Plain(message)
    }
}

impl From<&str> for OpError {
    fn from(message: &str) -> OpError {
        OpError::Plain(message.to_owned())
    }
}

/// Decoded `open_session` parameters (spec names not yet validated
/// against the node's evaluators — the service does that).
#[derive(Debug, Clone)]
pub(crate) struct OpenParams {
    pub session: u64,
    pub spec_names: Vec<String>,
    pub seed: u64,
    pub n_init: usize,
    pub pool_size: usize,
    pub mutation_fraction: f64,
    pub elite_count: usize,
    pub wl_levels: usize,
    pub size_init: usize,
    pub size_iter: usize,
    pub warm_start: bool,
}

impl OpenParams {
    /// Parses an `open_session` request. Spec-set shape errors are
    /// typed `spec_invalid`; everything else is a plain error.
    pub(crate) fn parse(request: &Json) -> Result<OpenParams, OpError> {
        let session = session_id(request)?;
        let specs = request
            .get("specs")
            .and_then(Json::as_arr)
            .ok_or_else(|| OpError::spec_invalid("missing array field 'specs'"))?;
        if specs.is_empty() {
            return Err(OpError::spec_invalid("'specs' must be non-empty"));
        }
        if specs.len() > MAX_SESSION_SPECS {
            return Err(OpError::spec_invalid(format!(
                "'specs' lists {} entries (max {MAX_SESSION_SPECS})",
                specs.len()
            )));
        }
        let mut spec_names = Vec::with_capacity(specs.len());
        for entry in specs {
            let name = entry
                .as_str()
                .ok_or_else(|| OpError::spec_invalid("non-string entry in 'specs'"))?;
            if spec_names.iter().any(|n| n == name) {
                return Err(OpError::spec_invalid(format!(
                    "duplicate spec '{name}' in 'specs'"
                )));
            }
            spec_names.push(name.to_owned());
        }
        let usize_field = |field: &str, default: usize| -> usize {
            request
                .get(field)
                .and_then(Json::as_u64)
                .map(|v| v as usize)
                .unwrap_or(default)
        };
        let mutation_fraction = request
            .get("mutation_fraction")
            .and_then(Json::as_f64)
            .unwrap_or(0.5);
        if !(0.0..=1.0).contains(&mutation_fraction) {
            return Err(OpError::plain("'mutation_fraction' must be within [0, 1]"));
        }
        Ok(OpenParams {
            session,
            spec_names,
            seed: request.get("seed").and_then(Json::as_u64).unwrap_or(0),
            n_init: usize_field("n_init", DEFAULT_SESSION_N_INIT),
            pool_size: usize_field("pool_size", DEFAULT_SESSION_POOL).max(1),
            mutation_fraction,
            elite_count: usize_field("elite_count", 5),
            wl_levels: usize_field("wl_levels", 4).min(6),
            size_init: usize_field("size_init", DEFAULT_SESSION_SIZE_INIT),
            size_iter: usize_field("size_iter", DEFAULT_SESSION_SIZE_ITER),
            warm_start: request
                .get("warm_start")
                .and_then(Json::as_bool)
                .unwrap_or(true),
        })
    }
}

/// The required integer `session` field.
pub(crate) fn session_id(request: &Json) -> Result<u64, OpError> {
    request
        .get("session")
        .and_then(Json::as_u64)
        .ok_or_else(|| OpError::plain("missing integer field 'session'"))
}

/// One open session: the BO state machine plus the serving parameters
/// fixed at open time.
#[derive(Debug)]
pub(crate) struct SessionCore {
    /// Declared spec family; the first entry is the optimization target.
    pub spec_names: Vec<String>,
    /// Handle index of the target spec.
    pub target: usize,
    /// Per-session seed (also the sizing seed of every step's eval).
    pub seed: u64,
    /// Sizing-BO init draws per step.
    pub size_init: usize,
    /// Sizing-BO iterations per step.
    pub size_iter: usize,
    /// Warm-start observations seeded at open time.
    pub warm: usize,
    /// Steps served so far (including unevaluated ones).
    pub steps: u64,
    /// The stepped optimizer.
    pub bo: BoSession,
}

/// The per-node session registry. The map lock guards only insert,
/// lookup and remove; every core has its own lock.
#[derive(Debug)]
pub(crate) struct SessionManager {
    slots: Mutex<BTreeMap<u64, Arc<Mutex<SessionCore>>>>,
    limit: usize,
    opened: AtomicU64,
    steps: AtomicU64,
}

impl SessionManager {
    pub(crate) fn new(limit: usize) -> SessionManager {
        SessionManager {
            slots: Mutex::new(BTreeMap::new()),
            limit,
            opened: AtomicU64::new(0),
            steps: AtomicU64::new(0),
        }
    }

    pub(crate) fn set_limit(&mut self, limit: usize) {
        self.limit = limit;
    }

    /// Opens (or deterministically resets) a session. Re-opening an
    /// existing id replaces its state — that idempotence is what makes
    /// open+steps replay byte-identical after a failover, so the
    /// response deliberately carries no created-vs-reset marker. The
    /// limit applies to genuinely new ids only.
    pub(crate) fn open(&self, session: u64, core: SessionCore) -> Result<(), OpError> {
        let mut slots = self.slots.lock().unwrap_or_else(|p| p.into_inner());
        if !slots.contains_key(&session) && slots.len() >= self.limit {
            return Err(OpError::session_limit(self.limit));
        }
        slots.insert(session, Arc::new(Mutex::new(core)));
        self.opened.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The session's slot, if open. Callers clone the `Arc` out and
    /// release the map lock before locking the core.
    pub(crate) fn get(&self, session: u64) -> Option<Arc<Mutex<SessionCore>>> {
        let slots = self.slots.lock().unwrap_or_else(|p| p.into_inner());
        slots.get(&session).cloned()
    }

    /// Removes and returns the session's slot.
    pub(crate) fn close(&self, session: u64) -> Option<Arc<Mutex<SessionCore>>> {
        let mut slots = self.slots.lock().unwrap_or_else(|p| p.into_inner());
        slots.remove(&session)
    }

    pub(crate) fn record_step(&self) {
        self.steps.fetch_add(1, Ordering::Relaxed);
    }

    /// The `stats` block: open/opened/steps counters.
    pub(crate) fn stats_json(&self) -> Json {
        let open = {
            let slots = self.slots.lock().unwrap_or_else(|p| p.into_inner());
            slots.len()
        };
        Json::Obj(vec![
            ("open".into(), Json::num(open as f64)),
            (
                "opened".into(),
                Json::num(self.opened.load(Ordering::Relaxed) as f64),
            ),
            (
                "steps".into(),
                Json::num(self.steps.load(Ordering::Relaxed) as f64),
            ),
        ])
    }
}

/// The canonical topology observation for a measured performance under
/// a spec — exactly the outer-loop oracle of `into_oa::optimize`
/// (objective `log10(max(FoM, 1))`, the spec's normalized constraints,
/// and the raw metrics payload). Warm-start records re-score a
/// performance measured under a *family* spec with the session's own
/// target spec through this same function.
pub fn observation_from_perf(spec: &Spec, perf: &OpAmpPerformance) -> TopoObservation {
    let fom = spec.fom(perf);
    TopoObservation {
        objective: fom.max(1.0).log10(),
        constraints: spec.constraints(perf),
        metrics: vec![perf.gain_db, perf.gbw_hz, perf.pm_deg, perf.power_w, fom],
    }
}

/// Decodes a stored/served `size_opt` result into the step observation:
/// `(None, sims)` when the sizing run found nothing.
pub(crate) fn observation_from_size_opt(
    spec: &Spec,
    result: &Json,
) -> (Option<TopoObservation>, u64) {
    let sims = result.get("sims").and_then(Json::as_u64).unwrap_or(0);
    if result.get("found").and_then(Json::as_bool) != Some(true) {
        return (None, sims);
    }
    let field = |name: &str| result.get(name).and_then(Json::as_f64);
    let (Some(gain_db), Some(gbw_hz), Some(pm_deg), Some(power_w)) = (
        field("gain_db"),
        field("gbw_hz"),
        field("pm_deg"),
        field("power_w"),
    ) else {
        return (None, sims);
    };
    let perf = OpAmpPerformance {
        gain_db,
        gbw_hz,
        pm_deg,
        power_w,
    };
    (Some(observation_from_perf(spec, &perf)), sims)
}

/// The incumbent object: best session record under feasible-first
/// ranking, or `Null` before the first successful evaluation.
pub(crate) fn incumbent_json(core: &SessionCore) -> Json {
    let record = core.bo.best().and_then(|i| core.bo.history().get(i));
    match record {
        None => Json::Null,
        Some(r) => {
            let mut fields = vec![
                ("topology".into(), Json::num(r.topology.index() as f64)),
                ("objective".into(), Json::num(r.observation.objective)),
                ("feasible".into(), Json::Bool(r.observation.is_feasible())),
            ];
            if let Some(&fom) = r.observation.metrics.get(4) {
                fields.push(("fom".into(), Json::num(fom)));
            }
            Json::Obj(fields)
        }
    }
}

fn specs_json(core: &SessionCore) -> Json {
    Json::Arr(core.spec_names.iter().map(Json::str).collect())
}

/// `open_session` result bytes.
pub(crate) fn open_result_json(session: u64, core: &SessionCore) -> String {
    Json::Obj(vec![
        ("session".into(), Json::num(session as f64)),
        ("specs".into(), specs_json(core)),
        ("seed".into(), Json::num(core.seed as f64)),
        ("n_init".into(), Json::num(core.bo.config().n_init as f64)),
        ("warm".into(), Json::num(core.warm as f64)),
    ])
    .encode()
    // lint: allow(panic, every field is a counter or short string; encode cannot fail)
    .expect("session fields are finite")
}

/// `step` result bytes. `outcome` is `None` when nothing could be
/// proposed (candidate space exhausted); the observation inside is
/// `None` when the proposal's sizing run found no design.
pub(crate) fn step_result_json(
    session: u64,
    step: u64,
    phase: &str,
    outcome: Option<(Topology, Option<&TopoObservation>, u64)>,
    core: &SessionCore,
) -> String {
    let mut fields = vec![
        ("session".into(), Json::num(session as f64)),
        ("step".into(), Json::num(step as f64)),
        ("phase".into(), Json::str(phase)),
        ("proposed".into(), Json::Bool(outcome.is_some())),
    ];
    if let Some((topology, observation, sims)) = outcome {
        fields.push(("topology".into(), Json::num(topology.index() as f64)));
        fields.push(("evaluated".into(), Json::Bool(observation.is_some())));
        if let Some(obs) = observation {
            fields.push(("objective".into(), Json::num(obs.objective)));
            if let Some(&fom) = obs.metrics.get(4) {
                fields.push(("fom".into(), Json::num(fom)));
            }
            fields.push(("feasible".into(), Json::Bool(obs.is_feasible())));
        }
        fields.push(("sims".into(), Json::num(sims as f64)));
    }
    fields.push(("rejected".into(), Json::num(core.bo.rejected() as f64)));
    fields.push(("incumbent".into(), incumbent_json(core)));
    Json::Obj(fields)
        .encode()
        // lint: allow(panic, objectives and metrics are finite by construction; encode cannot fail)
        .expect("step fields are finite")
}

/// `session_stats` result bytes.
pub(crate) fn session_stats_json(session: u64, core: &SessionCore) -> String {
    Json::Obj(vec![
        ("session".into(), Json::num(session as f64)),
        ("specs".into(), specs_json(core)),
        ("seed".into(), Json::num(core.seed as f64)),
        ("steps".into(), Json::num(core.steps as f64)),
        ("history".into(), Json::num(core.bo.history().len() as f64)),
        ("warm".into(), Json::num(core.warm as f64)),
        ("rejected".into(), Json::num(core.bo.rejected() as f64)),
        ("incumbent".into(), incumbent_json(core)),
    ])
    .encode()
    // lint: allow(panic, counters and finite metrics only; encode cannot fail)
    .expect("session stats are finite")
}

/// `close_session` result bytes — the session's final summary.
pub(crate) fn close_result_json(session: u64, core: &SessionCore) -> String {
    Json::Obj(vec![
        ("session".into(), Json::num(session as f64)),
        ("steps".into(), Json::num(core.steps as f64)),
        ("history".into(), Json::num(core.bo.history().len() as f64)),
        ("incumbent".into(), incumbent_json(core)),
    ])
    .encode()
    // lint: allow(panic, counters and finite metrics only; encode cannot fail)
    .expect("session summary is finite")
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_bo::TopoBoConfig;

    fn core() -> SessionCore {
        SessionCore {
            spec_names: vec!["S-1".into()],
            target: 0,
            seed: 3,
            size_init: 2,
            size_iter: 1,
            warm: 0,
            steps: 0,
            bo: BoSession::new(TopoBoConfig {
                n_init: 2,
                n_iter: 0,
                pool_size: 8,
                seed: 3,
                ..TopoBoConfig::default()
            }),
        }
    }

    #[test]
    fn limit_applies_to_new_ids_but_not_reopens() {
        let manager = SessionManager::new(2);
        manager.open(1, core()).unwrap();
        manager.open(2, core()).unwrap();
        assert_eq!(manager.open(3, core()), Err(OpError::session_limit(2)));
        // Re-opening an existing id is a reset, not a new session.
        manager.open(2, core()).unwrap();
        assert!(manager.get(2).is_some());
        let _ = manager.close(1);
        manager.open(3, core()).unwrap();
    }

    #[test]
    fn open_params_validate_the_spec_set() {
        let parse = |line: &str| OpenParams::parse(&Json::parse(line).unwrap());
        assert!(matches!(
            parse(r#"{"op":"open_session","specs":["S-1"]}"#),
            Err(OpError::Plain(_))
        ));
        let invalid = [
            r#"{"op":"open_session","session":1}"#,
            r#"{"op":"open_session","session":1,"specs":[]}"#,
            r#"{"op":"open_session","session":1,"specs":["S-1","S-1"]}"#,
            r#"{"op":"open_session","session":1,"specs":[7]}"#,
        ];
        for line in invalid {
            match parse(line) {
                Err(OpError::Typed { kind, .. }) => assert_eq!(kind, "spec_invalid", "{line}"),
                other => panic!("{line}: {other:?}"),
            }
        }
        let params =
            parse(r#"{"op":"open_session","session":9,"specs":["S-2","S-1"],"seed":4}"#).unwrap();
        assert_eq!(params.session, 9);
        assert_eq!(params.spec_names, vec!["S-2", "S-1"]);
        assert_eq!(params.seed, 4);
        assert_eq!(params.n_init, DEFAULT_SESSION_N_INIT);
        assert!(params.warm_start);
    }

    #[test]
    fn observation_matches_the_optimizer_oracle_recipe() {
        let spec = Spec::s1();
        let perf = OpAmpPerformance {
            gain_db: 80.0,
            gbw_hz: 2e7,
            pm_deg: 70.0,
            power_w: 1e-4,
        };
        let obs = observation_from_perf(&spec, &perf);
        let fom = spec.fom(&perf);
        assert_eq!(obs.objective.to_bits(), fom.max(1.0).log10().to_bits());
        assert_eq!(obs.constraints, spec.constraints(&perf));
        assert_eq!(obs.metrics.len(), 5);
        assert_eq!(obs.metrics[4].to_bits(), fom.to_bits());
    }
}
