//! Canonical wire error-kind strings — the one definition site.
//!
//! Every typed error frame on the wire carries
//! `{"error":{"kind":K,...}}` where `K` is one of the constants below.
//! Emitters (the session manager's `OpError`, the router's typed
//! failure frames) and matchers (the [`crate::SessionDriver`] retry
//! policy, chaos harnesses) all name the constant instead of repeating
//! the literal, so the `oa_lint wire` extraction pass (DESIGN.md §14)
//! can resolve each site back to this table and the declared protocol
//! spec (`crates/serve/protocol.spec`) has exactly one code mirror.
//!
//! The per-item batch kinds are defined by
//! [`into_oa::EvalErrorKind::code`] — `into-oa` sits below this crate,
//! so the strings live there; the `kinds_agree_with_core` test pins
//! the two tables together.

/// A session op named a session id that is not open on this node.
/// Retryable through the [`crate::SessionDriver`]: the driver replays
/// its recorded prefix into the (restarted, state-less) owner.
pub const UNKNOWN_SESSION: &str = "unknown_session";

/// `open_session` refused: the per-node cap on concurrently open
/// sessions is reached. Terminal for the request.
pub const SESSION_LIMIT: &str = "session_limit";

/// `open_session` refused: the `specs` list is missing, empty,
/// duplicated, oversized, or names an unknown spec. Terminal.
pub const SPEC_INVALID: &str = "spec_invalid";

/// A deterministic fault-injection plan failed the request on purpose.
/// Retryable: resending without the plan firing succeeds.
pub const INJECTED: &str = "injected";

/// The item itself is malformed (per-item `eval_batch` errors; must
/// equal [`into_oa::EvalErrorKind::BadRequest`]'s code). Terminal.
pub const BAD_REQUEST: &str = "bad_request";

/// The circuit elaborated but simulation failed (per-item `eval_batch`
/// errors; must equal [`into_oa::EvalErrorKind::Sim`]'s code). Terminal.
pub const SIM: &str = "sim";

/// An unexpected server-side failure (per-item `eval_batch` errors;
/// must equal [`into_oa::EvalErrorKind::Internal`]'s code). Retryable.
pub const INTERNAL: &str = "internal";

/// Router-originated: the in-flight window is full; the request was
/// shed before any shard saw it. Retryable after backoff.
pub const OVERLOADED: &str = "overloaded";

/// Router-originated: no live shard could take the request within the
/// failover budget. Retryable through the [`crate::SessionDriver`].
pub const UNAVAILABLE: &str = "unavailable";

/// Every kind a client can observe, in wire-stable order: serve session
/// kinds, per-item batch kinds, then router fabric kinds.
pub const ALL: &[&str] = &[
    UNKNOWN_SESSION,
    SESSION_LIMIT,
    SPEC_INVALID,
    INJECTED,
    BAD_REQUEST,
    SIM,
    INTERNAL,
    OVERLOADED,
    UNAVAILABLE,
];

#[cfg(test)]
mod tests {
    use super::*;
    use into_oa::EvalErrorKind;

    #[test]
    fn kinds_agree_with_core() {
        assert_eq!(EvalErrorKind::BadRequest.code(), BAD_REQUEST);
        assert_eq!(EvalErrorKind::Sim.code(), SIM);
        assert_eq!(EvalErrorKind::Injected.code(), INJECTED);
        assert_eq!(EvalErrorKind::Internal.code(), INTERNAL);
    }

    #[test]
    fn table_is_duplicate_free() {
        let mut sorted = ALL.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ALL.len());
    }
}
