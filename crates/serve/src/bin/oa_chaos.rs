//! `oa-chaos` — seeded chaos harness for the store and serving stack.
//!
//! Replays deterministic fault schedules (torn writes, failed syncs,
//! compaction tears, dropped/stalled connections, mid-frame disconnects,
//! worker panics, per-item batch errors) against the production recovery
//! paths, and checks two invariants per seed:
//!
//! 1. after every injected crash/recovery sequence, the compacted store
//!    log and the client-visible responses are **byte-identical** to a
//!    fault-free baseline;
//! 2. running the same seed twice yields the **same decision trace**
//!    (trace-hash equality), so any failure reproduces from its seed.

use std::path::PathBuf;
use std::process::exit;

use oa_serve::chaos::{load_seed_corpus, serve_trial, store_trial};

const USAGE: &str = "\
oa-chaos — seeded fault-injection harness for oa-store and oa-serve

USAGE:
    oa-chaos [--seeds FILE] [--seed N]... [--store-only | --serve-only]
             [--keep DIR]

OPTIONS:
    --seeds FILE   Seed corpus: one decimal seed per line, '#' comments
                   (default: tests/seeds/chaos.txt when present,
                   otherwise a built-in trio)
    --seed N       Add one seed (repeatable; suppresses the corpus file)
    --store-only   Run only the store trials
    --serve-only   Run only the serve trials
    --keep DIR     Keep trial artifacts under DIR instead of a scratch
                   directory that is removed on exit
    -h, --help     Print this help

OUTPUT:
    One line per trial:
      <kind>\\tseed=<N>\\tinjected=<k>/<n>\\ttrace=<hash>\\t<PASS|FAIL>
    Exit status 0 iff every trial passed both invariants.
";

fn fail(message: &str) -> ! {
    eprintln!("error: {message}\n\n{USAGE}");
    exit(2);
}

struct Args {
    seeds: Vec<u64>,
    run_store: bool,
    run_serve: bool,
    keep: Option<PathBuf>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds_file: Option<PathBuf> = None;
    let mut explicit_seeds: Vec<u64> = Vec::new();
    let mut run_store = true;
    let mut run_serve = true;
    let mut keep = None;

    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                exit(0);
            }
            "--store-only" => {
                run_serve = false;
                i += 1;
            }
            "--serve-only" => {
                run_store = false;
                i += 1;
            }
            flag @ ("--seeds" | "--seed" | "--keep") => {
                let Some(value) = argv.get(i + 1) else {
                    fail(&format!("flag '{flag}' needs a value"));
                };
                match flag {
                    "--seeds" => seeds_file = Some(PathBuf::from(value)),
                    "--seed" => match value.parse::<u64>() {
                        Ok(seed) => explicit_seeds.push(seed),
                        Err(_) => fail("--seed needs an unsigned integer"),
                    },
                    _ => keep = Some(PathBuf::from(value)),
                }
                i += 2;
            }
            other => fail(&format!("unknown flag '{other}'")),
        }
    }

    let seeds = if !explicit_seeds.is_empty() {
        explicit_seeds
    } else {
        let path = seeds_file.unwrap_or_else(|| PathBuf::from("tests/seeds/chaos.txt"));
        if path.exists() {
            match load_seed_corpus(&path) {
                Ok(seeds) if !seeds.is_empty() => seeds,
                Ok(_) => fail(&format!("seed corpus {} is empty", path.display())),
                Err(e) => fail(&format!("cannot read seed corpus: {e}")),
            }
        } else {
            vec![7, 42, 1003]
        }
    };

    Args {
        seeds,
        run_store,
        run_serve,
        keep,
    }
}

fn main() {
    let args = parse_args();
    // Injected worker panics are expected traffic here; keep them out of
    // stderr so real failures stand out. Anything else still prints.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected worker panic"))
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected worker panic"));
        if !injected {
            default_hook(info);
        }
    }));
    let (root, scratch) = match &args.keep {
        Some(dir) => (dir.clone(), false),
        None => (
            std::env::temp_dir().join(format!("oa_chaos_{}", std::process::id())),
            true,
        ),
    };

    let mut failures = 0usize;
    for &seed in &args.seeds {
        if args.run_store {
            // Two runs per seed: byte-identity per run, plus trace
            // equality across runs (the determinism invariant).
            let dir_a = root.join(format!("store_{seed}_a"));
            let dir_b = root.join(format!("store_{seed}_b"));
            match (store_trial(&dir_a, seed), store_trial(&dir_b, seed)) {
                (Ok(a), Ok(b)) => {
                    let ok =
                        a.matches_baseline && b.matches_baseline && a.trace_hash == b.trace_hash;
                    if !ok {
                        failures += 1;
                    }
                    println!(
                        "store\tseed={seed}\tinjected={}/{}\tretried_puts={}\ttrace={:016x}\t{}",
                        a.stats.injected,
                        a.stats.decisions,
                        a.retried_puts,
                        a.trace_hash,
                        verdict(
                            a.matches_baseline,
                            b.matches_baseline,
                            a.trace_hash == b.trace_hash
                        ),
                    );
                }
                (Err(e), _) | (_, Err(e)) => {
                    failures += 1;
                    println!("store\tseed={seed}\tFAIL (trial error: {e})");
                }
            }
        }
        if args.run_serve {
            let dir_a = root.join(format!("serve_{seed}_a"));
            let dir_b = root.join(format!("serve_{seed}_b"));
            match (serve_trial(&dir_a, seed), serve_trial(&dir_b, seed)) {
                (Ok(a), Ok(b)) => {
                    let ok =
                        a.matches_baseline && b.matches_baseline && a.trace_hash == b.trace_hash;
                    if !ok {
                        failures += 1;
                    }
                    println!(
                        "serve\tseed={seed}\tinjected={}/{}\ttrace={:016x}\t{}",
                        a.stats.injected,
                        a.stats.decisions,
                        a.trace_hash,
                        verdict(
                            a.matches_baseline,
                            b.matches_baseline,
                            a.trace_hash == b.trace_hash
                        ),
                    );
                }
                (Err(e), _) | (_, Err(e)) => {
                    failures += 1;
                    println!("serve\tseed={seed}\tFAIL (trial error: {e})");
                }
            }
        }
    }

    if scratch {
        let _ = std::fs::remove_dir_all(&root);
    }
    if failures > 0 {
        eprintln!("oa-chaos: {failures} trial(s) FAILED");
        exit(1);
    }
    println!("oa-chaos: all trials passed");
}

fn verdict(a_ok: bool, b_ok: bool, trace_ok: bool) -> &'static str {
    match (a_ok && b_ok, trace_ok) {
        (true, true) => "PASS",
        (false, true) => "FAIL (bytes diverge from baseline)",
        (true, false) => "FAIL (trace not reproducible)",
        (false, false) => "FAIL (bytes and trace)",
    }
}
