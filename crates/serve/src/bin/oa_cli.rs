//! `oa-cli` — command-line client for `oa-serve`.
//!
//! Submits jobs (single requests, or a newline-delimited JSON file,
//! pipelined over one connection) and prints results as TSV.

use std::io::{BufRead, BufReader, Read};
use std::process::exit;

use oa_serve::{request, Client, Json};

const USAGE: &str = "\
oa-cli — client for the oa-serve evaluation daemon

USAGE:
    oa-cli [--addr HOST:PORT | --router N] <COMMAND>

COMMANDS:
    eval --spec S-N --topology CODE --x V1,V2,...   One evaluation, printed as TSV
    batch FILE                                      Pipeline request lines from FILE
                                                    ('-' reads stdin); prints TSV rows
                                                    sorted by request id
    batch --raw FILE                                Same, but print raw response lines
                                                    (sorted) instead of TSV
    batch --serial FILE                             Same, but one request in flight at
                                                    a time (deterministic server-side
                                                    ordering; combines with --raw)
    stats                                           Print the server's stats JSON

OPTIONS:
    --addr HOST:PORT   Server address (default 127.0.0.1:7878)
    --router N         Spawn an ephemeral N-shard fabric (the sibling oa-router
                       binary with --spawn N), run the command against it, then
                       tear it down. Mutually exclusive with --addr.
    -h, --help         Print this help

TSV COLUMNS:
    id  ok  topology  gain_db  gbw_hz  pm_deg  power_w  fom  feasible  error
    (floats use the {:.17e} convention; batch responses containing an
    eval_batch result expand to one row per item, id suffixed /index)
";

fn fail(message: &str) -> ! {
    eprintln!("error: {message}\n\n{USAGE}");
    exit(2);
}

/// An ephemeral `oa-router --spawn N` child (started by `--router N`),
/// killed on drop so a failing command still tears the fabric down.
struct SpawnedRouter {
    child: std::process::Child,
    addr: String,
}

impl SpawnedRouter {
    /// Spawns the sibling `oa-router` binary with N in-process shards on
    /// a free port and scrapes the advertised address from its banner.
    fn start(shards: u32) -> Result<SpawnedRouter, String> {
        let exe = std::env::current_exe().map_err(|e| e.to_string())?;
        let dir = exe.parent().ok_or("cannot locate sibling binaries")?;
        let router = dir.join(format!("oa-router{}", std::env::consts::EXE_SUFFIX));
        let mut child = std::process::Command::new(&router)
            .args(["--spawn", &shards.to_string(), "--addr", "127.0.0.1:0"])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .map_err(|e| format!("cannot spawn {}: {e}", router.display()))?;
        let stdout = child.stdout.take().ok_or("no router stdout")?;
        for line in BufReader::new(stdout).lines() {
            let line = line.map_err(|e| e.to_string())?;
            if let Some(addr) = line.strip_prefix("oa-router listening on ") {
                return Ok(SpawnedRouter {
                    child,
                    addr: addr.trim().to_owned(),
                });
            }
        }
        let _ = child.kill();
        Err("oa-router exited without advertising an address".to_owned())
    }
}

impl Drop for SpawnedRouter {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    let mut addr = "127.0.0.1:7878".to_owned();
    if let Some(i) = args.iter().position(|a| a == "--addr") {
        if i + 1 >= args.len() {
            fail("--addr needs a value");
        }
        addr = args.remove(i + 1);
        args.remove(i);
    }
    let mut router: Option<SpawnedRouter> = None;
    if let Some(i) = args.iter().position(|a| a == "--router") {
        if i + 1 >= args.len() {
            fail("--router needs a shard count");
        }
        let shards: u32 = match args.remove(i + 1).parse() {
            Ok(n) if n >= 1 => n,
            _ => fail("--router needs a positive shard count"),
        };
        args.remove(i);
        match SpawnedRouter::start(shards) {
            Ok(spawned) => {
                addr = spawned.addr.clone();
                router = Some(spawned);
            }
            Err(e) => {
                eprintln!("error: {e}");
                exit(1);
            }
        }
    }
    let Some(command) = args.first().cloned() else {
        fail("missing command");
    };

    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            exit(1);
        }
    };

    let outcome = match command.as_str() {
        "eval" => cmd_eval(&mut client, &args[1..]),
        "batch" => cmd_batch(&mut client, &args[1..]),
        "stats" => cmd_stats(&mut client),
        other => fail(&format!("unknown command '{other}'")),
    };
    drop(router); // tear the ephemeral fabric down before exiting
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_eval(client: &mut Client, args: &[String]) -> Result<(), String> {
    let spec = flag_value(args, "--spec").unwrap_or("S-1");
    let topology: usize = flag_value(args, "--topology")
        .ok_or("missing --topology")?
        .parse()
        .map_err(|_| "--topology needs an integer".to_owned())?;
    let x: Vec<f64> = flag_value(args, "--x")
        .ok_or("missing --x")?
        .split(',')
        .map(|v| v.trim().parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|_| "--x needs comma-separated numbers".to_owned())?;
    let line = request::eval(0, spec, topology, &x);
    let response = client.request(&line).map_err(|e| e.to_string())?;
    println!("{}", tsv_header());
    for row in tsv_rows(&response) {
        println!("{row}");
    }
    Ok(())
}

fn cmd_batch(client: &mut Client, args: &[String]) -> Result<(), String> {
    let raw = args.iter().any(|a| a == "--raw");
    let serial = args.iter().any(|a| a == "--serial");
    let file = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("missing request file (or '-')")?;
    let text = if file == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| e.to_string())?;
        buf
    } else {
        std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?
    };
    let lines: Vec<String> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(str::to_owned)
        .collect();
    // Serial mode keeps one request in flight, so the server processes
    // (and counts) requests in file order — what the golden-fixture
    // replay needs for deterministic stats.
    let mut responses = if serial {
        lines
            .iter()
            .map(|l| client.request(l))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| e.to_string())?
    } else {
        client.pipeline(&lines).map_err(|e| e.to_string())?
    };
    // Arrival order is nondeterministic under concurrency; sort by the
    // echoed id (falling back to the raw line) for stable output.
    responses.sort_by_key(|r| {
        Json::parse(r)
            .ok()
            .and_then(|v| v.get("id").and_then(Json::as_u64))
            .map_or_else(|| (u64::MAX, r.clone()), |id| (id, String::new()))
    });
    if raw {
        for r in &responses {
            println!("{r}");
        }
    } else {
        println!("{}", tsv_header());
        for r in &responses {
            for row in tsv_rows(r) {
                println!("{row}");
            }
        }
    }
    Ok(())
}

fn cmd_stats(client: &mut Client) -> Result<(), String> {
    let response = client
        .request(&request::stats(0))
        .map_err(|e| e.to_string())?;
    println!("{response}");
    Ok(())
}

fn tsv_header() -> &'static str {
    "id\tok\ttopology\tgain_db\tgbw_hz\tpm_deg\tpower_w\tfom\tfeasible\terror"
}

fn num_cell(obj: &Json, key: &str) -> String {
    match obj.get(key).and_then(Json::as_f64) {
        Some(v) if v.fract() == 0.0 && key == "topology" => format!("{v:.0}"),
        Some(v) => format!("{v:.17e}"),
        None => "-".to_owned(),
    }
}

fn result_row(id: &str, ok: bool, obj: &Json) -> String {
    let error = obj
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or("-")
        .replace(['\t', '\n'], " ");
    format!(
        "{id}\t{ok}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{error}",
        num_cell(obj, "topology"),
        num_cell(obj, "gain_db"),
        num_cell(obj, "gbw_hz"),
        num_cell(obj, "pm_deg"),
        num_cell(obj, "power_w"),
        num_cell(obj, "fom"),
        obj.get("feasible")
            .and_then(Json::as_bool)
            .map_or_else(|| "-".to_owned(), |b| b.to_string()),
    )
}

/// Expands one response line into TSV rows (one per eval result;
/// eval_batch items become `id/index` rows).
fn tsv_rows(response: &str) -> Vec<String> {
    let Ok(parsed) = Json::parse(response) else {
        return vec![format!(
            "-\tfalse\t-\t-\t-\t-\t-\t-\t-\tunparseable response"
        )];
    };
    let id = parsed
        .get("id")
        .map(|v| v.encode().unwrap_or_else(|_| "null".into()))
        .unwrap_or_else(|| "null".into());
    let ok = parsed.get("ok").and_then(Json::as_bool).unwrap_or(false);
    if !ok {
        return vec![result_row(&id, false, &parsed)];
    }
    let Some(result) = parsed.get("result") else {
        return vec![result_row(&id, ok, &parsed)];
    };
    if let Some(items) = result.get("items").and_then(Json::as_arr) {
        items
            .iter()
            .enumerate()
            .map(|(i, item)| result_row(&format!("{id}/{i}"), item.get("error").is_none(), item))
            .collect()
    } else {
        vec![result_row(&id, ok, result)]
    }
}
