//! `oa-serve` — the evaluation daemon.
//!
//! Binds a TCP port, serves `eval`/`eval_batch`/`size_opt`/`stats` over
//! newline-delimited JSON, and persists every result in the crash-safe
//! store so identical requests are never re-simulated, even across
//! restarts.

use std::path::PathBuf;
use std::process::exit;

use oa_fault::{FaultConfig, Faults};
use oa_serve::{serve, ServerConfig, ShardIdentity};

const USAGE: &str = "\
oa-serve — concurrent evaluation service for the INTO-OA design space

USAGE:
    oa-serve [--addr HOST:PORT] [--workers N] [--queue N] [--store PATH]
             [--shard I/N] [--session-limit N] [--fault-seed N]

OPTIONS:
    --addr HOST:PORT   Bind address (default 127.0.0.1:7878; port 0 picks a free port)
    --workers N        Evaluation worker threads (default: OA_JOBS or detected cores)
    --queue N          Bounded request-queue capacity (default 256)
    --store PATH       Result-store log file
                       (default: $OA_STORE_DIR/results.log or results/store/results.log)
    --session-limit N  Max concurrently open BO sessions (default 64);
                       an open_session beyond it answers the typed
                       \"session_limit\" error. Reopening a held id never
                       counts against the limit.
    --shard I/N        Mark this instance as shard I (zero-based) of N behind an
                       oa-router front-end. Introspective only: reported in the
                       startup banner and as a trailing \"shard\" field in stats.
    --fault-seed N     CHAOS TESTING ONLY: inject deterministic faults
                       (torn writes, failed syncs, dropped/stalled
                       connections, worker panics, per-item batch errors)
                       from the seeded storm plan. Same seed, same
                       decision sequence. Never use in production.
    -h, --help         Print this help

PROTOCOL:
    One JSON object per line; responses echo the request \"id\" and may
    arrive out of order (pipelining). See DESIGN.md §7.

ENVIRONMENT:
    OA_STORE_DIR       Store directory when --store is not given
    OA_JOBS            Default worker count
";

fn fail(message: &str) -> ! {
    eprintln!("error: {message}\n\n{USAGE}");
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServerConfig::loopback();
    config.addr = "127.0.0.1:7878".to_owned();

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            print!("{USAGE}");
            return;
        }
        let Some(value) = args.get(i + 1) else {
            fail(&format!("flag '{flag}' needs a value"));
        };
        match flag {
            "--addr" => config.addr = value.clone(),
            "--workers" => match value.parse::<usize>() {
                Ok(n) if n >= 1 => config.workers = n,
                _ => fail("--workers needs a positive integer"),
            },
            "--queue" => match value.parse::<usize>() {
                Ok(n) if n >= 1 => config.queue = n,
                _ => fail("--queue needs a positive integer"),
            },
            "--store" => config.store_path = PathBuf::from(value),
            "--shard" => match value.split_once('/') {
                Some((i, n)) => match (i.parse::<u32>(), n.parse::<u32>()) {
                    (Ok(index), Ok(count)) if count >= 1 && index < count => {
                        config.shard = Some(ShardIdentity { index, count });
                    }
                    _ => fail("--shard needs I/N with 0 <= I < N"),
                },
                None => fail("--shard needs the form I/N, e.g. 0/2"),
            },
            "--session-limit" => match value.parse::<usize>() {
                Ok(n) if n >= 1 => config.session_limit = n,
                _ => fail("--session-limit needs a positive integer"),
            },
            "--fault-seed" => match value.parse::<u64>() {
                Ok(seed) => config.faults = Faults::seeded(seed, FaultConfig::storm()),
                _ => fail("--fault-seed needs an unsigned integer"),
            },
            other => fail(&format!("unknown flag '{other}'")),
        }
        i += 2;
    }

    let workers = config.workers;
    let store = config.store_path.clone();
    let shard = config.shard;
    match serve(config) {
        Ok(server) => {
            // Exact line format is load-bearing: scripts scrape the
            // address (port 0 resolves here).
            println!("oa-serve listening on {}", server.addr());
            println!(
                "  workers: {workers}, store: {} ({} records)",
                store.display(),
                server.service().store_len()
            );
            if let Some(s) = shard {
                println!("  shard: {}/{}", s.index, s.count);
            }
            server.join();
        }
        Err(e) => {
            eprintln!("error: failed to start: {e}");
            exit(1);
        }
    }
}
