//! A small synchronous client for the wire protocol, used by `oa-cli`
//! and the integration tests.
//!
//! [`Client::connect_with`] adds the resilience layer the chaos harness
//! exercises: a per-read timeout and bounded, deterministic
//! exponential-backoff retry ([`oa_fault::RetryPolicy`]). Retrying a
//! request blindly is safe because every endpoint is store-backed and
//! deterministic — resending the same line yields the same bytes, and a
//! half-applied request cannot exist ([`oa_store::Store::put`] either
//! lands a record or leaves no trace).

use std::fmt::Display;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use oa_fault::RetryPolicy;

use crate::json::Json;
use crate::wire_kinds::{INJECTED, UNAVAILABLE, UNKNOWN_SESSION};

/// Client resilience parameters.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Retry schedule for [`Client::request_with_retry`].
    pub retry: RetryPolicy,
    /// Per-read timeout in milliseconds; `None` blocks forever. A
    /// timeout surfaces as an `io::Error` (`WouldBlock`/`TimedOut`),
    /// which the retry path treats like any other failure: backoff,
    /// reconnect, resend.
    pub timeout_millis: Option<u64>,
}

impl Default for ClientConfig {
    /// No retry, no timeout — the behavior of [`Client::connect`].
    fn default() -> ClientConfig {
        ClientConfig {
            retry: RetryPolicy::disabled(),
            timeout_millis: None,
        }
    }
}

impl ClientConfig {
    /// The recommended resilient profile: 4 attempts with 10 ms → 100 ms
    /// capped backoff, 2 s read timeout.
    pub fn resilient() -> ClientConfig {
        ClientConfig {
            retry: RetryPolicy::default_client(),
            timeout_millis: Some(2_000),
        }
    }
}

/// Resolves an address *text* freshly — the helper behind every dial and
/// re-dial in this crate and in `oa-router`. Resolution happens on every
/// call on purpose: a shard restarted behind a DNS name (service
/// discovery, failover to a standby on a different address) must be
/// picked up by the next reconnect, not pinned to the first lookup.
///
/// # Errors
///
/// Resolution failures, or a name that resolves to nothing.
pub fn resolve(addr_text: &str) -> std::io::Result<Vec<SocketAddr>> {
    let addrs: Vec<SocketAddr> = addr_text.to_socket_addrs()?.collect();
    if addrs.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::AddrNotAvailable,
            format!("'{addr_text}' resolved to no addresses"),
        ));
    }
    Ok(addrs)
}

/// A connected client. One TCP connection; requests may be pipelined
/// (the server replies as jobs finish, tagged by `id`).
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    addr_text: String,
    config: ClientConfig,
}

impl Client {
    /// Connects to a running `oa-serve` with no timeout and no retry.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect<A: ToSocketAddrs + Display>(addr: A) -> std::io::Result<Client> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit resilience parameters.
    ///
    /// The address is kept as *text*, not as its first resolution:
    /// every [`Client::reconnect`] re-resolves it, so retrying against a
    /// shard that was restarted behind the same name (possibly on a new
    /// address) dials the fresh target instead of the stale one.
    ///
    /// # Errors
    ///
    /// Address resolution or connection failures.
    pub fn connect_with<A: ToSocketAddrs + Display>(
        addr: A,
        config: ClientConfig,
    ) -> std::io::Result<Client> {
        let addr_text = addr.to_string();
        let (writer, reader) = Self::open(&addr_text, config.timeout_millis)?;
        Ok(Client {
            writer,
            reader,
            addr_text,
            config,
        })
    }

    /// The address text this client dials (and re-resolves) on every
    /// connect.
    pub fn addr_text(&self) -> &str {
        &self.addr_text
    }

    fn open(
        addr_text: &str,
        timeout_millis: Option<u64>,
    ) -> std::io::Result<(TcpStream, BufReader<TcpStream>)> {
        let addrs = resolve(addr_text)?;
        let writer = TcpStream::connect(addrs.as_slice())?;
        writer.set_nodelay(true)?;
        if let Some(millis) = timeout_millis {
            writer.set_read_timeout(Some(Duration::from_millis(millis.max(1))))?;
        }
        let reader = BufReader::new(writer.try_clone()?);
        Ok((writer, reader))
    }

    /// Drops the current connection, **re-resolves the address text**
    /// and dials again (same timeout). Any buffered partial frame is
    /// discarded. Re-resolution is the point: the previous behavior
    /// cached the first resolved `SocketAddr` forever, which broke
    /// failover to a shard restarted behind the same name.
    ///
    /// # Errors
    ///
    /// Resolution or connection failures.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let (writer, reader) = Self::open(&self.addr_text, self.config.timeout_millis)?;
        self.writer = writer;
        self.reader = reader;
        Ok(())
    }

    /// Sends one request line (newline appended).
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Reads one response line (newline stripped).
    ///
    /// # Errors
    ///
    /// Socket read failures; `UnexpectedEof` on server disconnect —
    /// including a *mid-frame* disconnect, where bytes arrived but the
    /// terminating newline never did. A torn frame is never returned as
    /// if it were a response.
    pub fn recv_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        if !line.ends_with('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-frame",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// One request, one response.
    ///
    /// # Errors
    ///
    /// Socket failures.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.send_line(line)?;
        self.recv_line()
    }

    /// One request, one response, with the configured retry schedule:
    /// on any socket failure (including a read timeout or a mid-frame
    /// disconnect) sleep the deterministic backoff delay, reconnect and
    /// resend. Blind resends are safe — see the module docs.
    ///
    /// # Errors
    ///
    /// The last socket failure once the retry budget is exhausted.
    pub fn request_with_retry(&mut self, line: &str) -> std::io::Result<String> {
        let mut attempt = 0u32;
        loop {
            match self.send_line(line).and_then(|()| self.recv_line()) {
                Ok(response) => return Ok(response),
                Err(e) => match self.config.retry.backoff_millis(attempt) {
                    Some(delay) => {
                        std::thread::sleep(Duration::from_millis(delay));
                        attempt += 1;
                        // A failed reconnect is not fatal here: the next
                        // send fails fast and consumes the next attempt.
                        let _ = self.reconnect();
                    }
                    None => return Err(e),
                },
            }
        }
    }

    /// Pipelines every request line, then collects exactly as many
    /// responses, **in arrival order** (match them up by `id`).
    ///
    /// # Errors
    ///
    /// Socket failures.
    pub fn pipeline(&mut self, lines: &[String]) -> std::io::Result<Vec<String>> {
        for line in lines {
            self.send_line(line)?;
        }
        (0..lines.len()).map(|_| self.recv_line()).collect()
    }
}

/// Replay bound for [`SessionDriver`] calls: injected-fault retries and
/// failover replays both consume from this budget, so a hostile plan
/// cannot loop a client forever.
const SESSION_DRIVER_ATTEMPTS: u32 = 64;

/// A session-aware request recorder implementing the client half of the
/// session failure model (DESIGN.md §13).
///
/// Session state lives on one shard, so a shard loss loses the state —
/// but never the *result*, because a session's response stream is a pure
/// function of its request prefix and the shared store. The driver
/// records that prefix (`open_session` plus every acknowledged `step`)
/// and, when a request comes back `unknown_session` (the stand-in shard
/// after a failover), replays it: re-open, re-step, and verify each
/// replayed response is **byte-identical** to the recorded one — any
/// divergence is reported as an error rather than papered over. Typed
/// `injected` errors (the fault plan failing a step before state
/// mutates) and `unavailable` frames (the router out of failover
/// budget mid-storm) are simply resent.
///
/// Failover replays can themselves bounce between shards, which *forks*
/// the session: more than one shard holds a live copy, and a stale copy
/// answers steps with an `ok` frame carrying the wrong step counter
/// instead of `unknown_session`. The driver detects the fork from the
/// counters it already knows — a `step` result must carry
/// `recorded + 1`, a `session_stats`/`close_session` result must carry
/// `recorded` — and heals it the same way as a failover: replay the
/// prefix (the idempotent re-open resets whichever copy answers) and
/// resend. A frame with the *right* counter but different bytes is the
/// one case that stays a hard error: that is a determinism bug, not a
/// routing artifact.
#[derive(Debug, Default)]
pub struct SessionDriver {
    open_line: Option<String>,
    open_response: Option<String>,
    steps: Vec<(String, String)>,
}

impl SessionDriver {
    /// A driver with no recorded prefix.
    pub fn new() -> SessionDriver {
        SessionDriver::default()
    }

    /// Steps recorded (and replayed on failover) so far.
    pub fn recorded_steps(&self) -> usize {
        self.steps.len()
    }

    /// The typed error kind of an `"ok":false` response, if any.
    fn error_kind(response: &str) -> Option<String> {
        let parsed = Json::parse(response).ok()?;
        if parsed.get("ok").and_then(Json::as_bool) != Some(false) {
            return None;
        }
        parsed
            .get("error")?
            .get("kind")?
            .as_str()
            .map(str::to_owned)
    }

    fn diverged(what: &str) -> std::io::Error {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("session replay diverged: {what}"),
        )
    }

    /// Sends one line, resending on `injected` errors (state-preserving
    /// fault-plan rejections) and `unavailable` frames (router failover
    /// budget exhausted mid-storm), drawing from the shared attempt
    /// budget.
    fn send_past_faults(
        client: &mut Client,
        line: &str,
        attempts: &mut u32,
    ) -> std::io::Result<String> {
        loop {
            if *attempts == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "session driver attempt budget exhausted",
                ));
            }
            *attempts -= 1;
            let response = client.request_with_retry(line)?;
            if !matches!(
                Self::error_kind(&response).as_deref(),
                Some(INJECTED | UNAVAILABLE)
            ) {
                return Ok(response);
            }
        }
    }

    /// The step counter an `ok` response carries, when it is a session
    /// op that carries one: `"step"` on a `step` result, `"steps"` on a
    /// `session_stats`/`close_session` result.
    fn response_counter(response: &str) -> Option<(bool, u64)> {
        let parsed = Json::parse(response).ok()?;
        if parsed.get("ok").and_then(Json::as_bool) != Some(true) {
            return None;
        }
        let result = parsed.get("result")?;
        if let Some(step) = result.get("step").and_then(Json::as_u64) {
            return Some((true, step));
        }
        result
            .get("steps")
            .and_then(Json::as_u64)
            .map(|s| (false, s))
    }

    /// Whether an `ok` response came from a *stale fork* of the session:
    /// a shard left holding an out-of-date copy after replays bounced
    /// across a flaky fabric. Detected purely from the recorded prefix —
    /// a `step` must answer `recorded + 1`, a stats/close must answer
    /// `recorded`.
    fn is_stale(&self, response: &str) -> bool {
        match Self::response_counter(response) {
            Some((true, step)) => step != self.steps.len() as u64 + 1,
            Some((false, steps)) => steps != self.steps.len() as u64,
            None => false,
        }
    }

    /// Replays the recorded prefix against (whatever now answers as) the
    /// session's shard, verifying byte-identity of every replayed frame.
    ///
    /// A replay is not atomic: its frames can themselves land on
    /// different shards mid-storm, so a frame may come back
    /// `unknown_session` or with a forked step counter. Those are
    /// routing artifacts, and the replay restarts from the (idempotent,
    /// state-resetting) re-open, bounded by the attempt budget. A frame
    /// with the *correct* step counter but different bytes is a genuine
    /// determinism violation and fails hard.
    fn replay(&self, client: &mut Client, attempts: &mut u32) -> std::io::Result<()> {
        let (Some(open_line), Some(open_response)) = (&self.open_line, &self.open_response) else {
            return Err(Self::diverged("no recorded open_session to replay"));
        };
        'attempt: loop {
            let reopened = Self::send_past_faults(client, open_line, attempts)?;
            if Self::error_kind(&reopened).is_some() {
                continue 'attempt;
            }
            if reopened != *open_response {
                return Err(Self::diverged("open_session response changed"));
            }
            for (i, (line, recorded)) in self.steps.iter().enumerate() {
                let replayed = Self::send_past_faults(client, line, attempts)?;
                if replayed == *recorded {
                    continue;
                }
                let expected = i as u64 + 1;
                match Self::response_counter(&replayed) {
                    // Right step, different bytes: a determinism bug,
                    // exactly what this harness exists to catch.
                    Some((true, step)) if step == expected => {
                        return Err(Self::diverged(&format!("step {expected} response changed")));
                    }
                    // A stale fork or a state-less stand-in answered;
                    // restart the replay from the resetting re-open.
                    _ => continue 'attempt,
                }
            }
            return Ok(());
        }
    }

    /// One session-op request with the full resilience policy: resend on
    /// `injected`/`unavailable`, replay the recorded prefix on
    /// `unknown_session` *and* on an `ok` frame whose step counter shows
    /// a stale fork answered.
    fn call_with_budget(
        &mut self,
        client: &mut Client,
        line: &str,
        attempts: &mut u32,
    ) -> std::io::Result<String> {
        loop {
            let response = Self::send_past_faults(client, line, attempts)?;
            if self.open_line.is_some()
                && (Self::error_kind(&response).as_deref() == Some(UNKNOWN_SESSION)
                    || self.is_stale(&response))
            {
                self.replay(client, attempts)?;
                continue;
            }
            return Ok(response);
        }
    }

    /// Opens (or re-opens) the session, recording the request as the
    /// replay prefix root. Clears any previously recorded steps.
    ///
    /// # Errors
    ///
    /// Socket failures or an exhausted attempt budget.
    pub fn open(&mut self, client: &mut Client, line: &str) -> std::io::Result<String> {
        let mut attempts = SESSION_DRIVER_ATTEMPTS;
        let response = Self::send_past_faults(client, line, &mut attempts)?;
        if Self::error_kind(&response).is_none() {
            self.open_line = Some(line.to_owned());
            self.open_response = Some(response.clone());
            self.steps.clear();
        }
        Ok(response)
    }

    /// One `step`, recorded into the replay prefix on success.
    ///
    /// # Errors
    ///
    /// Socket failures, an exhausted attempt budget, or a replay whose
    /// frames diverge from the recorded ones.
    pub fn step(&mut self, client: &mut Client, line: &str) -> std::io::Result<String> {
        let mut attempts = SESSION_DRIVER_ATTEMPTS;
        let response = self.call_with_budget(client, line, &mut attempts)?;
        if Self::error_kind(&response).is_none() {
            self.steps.push((line.to_owned(), response.clone()));
        }
        Ok(response)
    }

    /// A non-recording session op (`session_stats`, `close_session`)
    /// under the same resilience policy.
    ///
    /// # Errors
    ///
    /// Socket failures, an exhausted attempt budget, or a divergent
    /// replay.
    pub fn call(&mut self, client: &mut Client, line: &str) -> std::io::Result<String> {
        let mut attempts = SESSION_DRIVER_ATTEMPTS;
        self.call_with_budget(client, line, &mut attempts)
    }
}

/// Request-line builders (canonical field order, canonical floats) —
/// clients that build requests with these get maximal store reuse, since
/// equal requests are equal bytes.
pub mod request {
    use super::Json;

    /// An `eval` request.
    pub fn eval(id: u64, spec: &str, topology: usize, x: &[f64]) -> String {
        Json::Obj(vec![
            ("id".into(), Json::num(id as f64)),
            ("op".into(), Json::str("eval")),
            ("spec".into(), Json::str(spec)),
            ("topology".into(), Json::num(topology as f64)),
            (
                "x".into(),
                Json::Arr(x.iter().map(|&v| Json::num(v)).collect()),
            ),
        ])
        .encode()
        .expect("finite request")
    }

    /// An `eval_batch` request over `(topology, x)` items.
    pub fn eval_batch(id: u64, spec: &str, items: &[(usize, Vec<f64>)]) -> String {
        Json::Obj(vec![
            ("id".into(), Json::num(id as f64)),
            ("op".into(), Json::str("eval_batch")),
            ("spec".into(), Json::str(spec)),
            (
                "items".into(),
                Json::Arr(
                    items
                        .iter()
                        .map(|(t, x)| {
                            Json::Obj(vec![
                                ("topology".into(), Json::num(*t as f64)),
                                (
                                    "x".into(),
                                    Json::Arr(x.iter().map(|&v| Json::num(v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .encode()
        .expect("finite request")
    }

    /// A `size_opt` request.
    pub fn size_opt(
        id: u64,
        spec: &str,
        topology: usize,
        seed: u64,
        n_init: usize,
        n_iter: usize,
    ) -> String {
        Json::Obj(vec![
            ("id".into(), Json::num(id as f64)),
            ("op".into(), Json::str("size_opt")),
            ("spec".into(), Json::str(spec)),
            ("topology".into(), Json::num(topology as f64)),
            ("seed".into(), Json::num(seed as f64)),
            ("n_init".into(), Json::num(n_init as f64)),
            ("n_iter".into(), Json::num(n_iter as f64)),
        ])
        .encode()
        .expect("finite request")
    }

    /// A `stats` request.
    pub fn stats(id: u64) -> String {
        Json::Obj(vec![
            ("id".into(), Json::num(id as f64)),
            ("op".into(), Json::str("stats")),
        ])
        .encode()
        .expect("finite request")
    }

    /// An `open_session` request. The first spec is the optimization
    /// target; the rest declare the warm-start family. Serving defaults
    /// apply to every parameter not in the builder's signature.
    #[allow(clippy::too_many_arguments)]
    pub fn open_session(
        id: u64,
        session: u64,
        specs: &[&str],
        seed: u64,
        n_init: usize,
        pool_size: usize,
        size_init: usize,
        size_iter: usize,
    ) -> String {
        Json::Obj(vec![
            ("id".into(), Json::num(id as f64)),
            ("op".into(), Json::str("open_session")),
            ("session".into(), Json::num(session as f64)),
            (
                "specs".into(),
                Json::Arr(specs.iter().map(|s| Json::str(*s)).collect()),
            ),
            ("seed".into(), Json::num(seed as f64)),
            ("n_init".into(), Json::num(n_init as f64)),
            ("pool_size".into(), Json::num(pool_size as f64)),
            ("size_init".into(), Json::num(size_init as f64)),
            ("size_iter".into(), Json::num(size_iter as f64)),
        ])
        .encode()
        .expect("finite request")
    }

    /// A `step` request.
    pub fn step(id: u64, session: u64) -> String {
        Json::Obj(vec![
            ("id".into(), Json::num(id as f64)),
            ("op".into(), Json::str("step")),
            ("session".into(), Json::num(session as f64)),
        ])
        .encode()
        .expect("finite request")
    }

    /// A `session_stats` request.
    pub fn session_stats(id: u64, session: u64) -> String {
        Json::Obj(vec![
            ("id".into(), Json::num(id as f64)),
            ("op".into(), Json::str("session_stats")),
            ("session".into(), Json::num(session as f64)),
        ])
        .encode()
        .expect("finite request")
    }

    /// A `close_session` request.
    pub fn close_session(id: u64, session: u64) -> String {
        Json::Obj(vec![
            ("id".into(), Json::num(id as f64)),
            ("op".into(), Json::str("close_session")),
            ("session".into(), Json::num(session as f64)),
        ])
        .encode()
        .expect("finite request")
    }
}
