//! A small synchronous client for the wire protocol, used by `oa-cli`
//! and the integration tests.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::json::Json;

/// A connected client. One TCP connection; requests may be pipelined
/// (the server replies as jobs finish, tagged by `id`).
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running `oa-serve`.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Sends one request line (newline appended).
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Reads one response line (newline stripped).
    ///
    /// # Errors
    ///
    /// Socket read failures; `UnexpectedEof` on server disconnect.
    pub fn recv_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// One request, one response.
    ///
    /// # Errors
    ///
    /// Socket failures.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.send_line(line)?;
        self.recv_line()
    }

    /// Pipelines every request line, then collects exactly as many
    /// responses, **in arrival order** (match them up by `id`).
    ///
    /// # Errors
    ///
    /// Socket failures.
    pub fn pipeline(&mut self, lines: &[String]) -> std::io::Result<Vec<String>> {
        for line in lines {
            self.send_line(line)?;
        }
        (0..lines.len()).map(|_| self.recv_line()).collect()
    }
}

/// Request-line builders (canonical field order, canonical floats) —
/// clients that build requests with these get maximal store reuse, since
/// equal requests are equal bytes.
pub mod request {
    use super::Json;

    /// An `eval` request.
    pub fn eval(id: u64, spec: &str, topology: usize, x: &[f64]) -> String {
        Json::Obj(vec![
            ("id".into(), Json::num(id as f64)),
            ("op".into(), Json::str("eval")),
            ("spec".into(), Json::str(spec)),
            ("topology".into(), Json::num(topology as f64)),
            (
                "x".into(),
                Json::Arr(x.iter().map(|&v| Json::num(v)).collect()),
            ),
        ])
        .encode()
        .expect("finite request")
    }

    /// An `eval_batch` request over `(topology, x)` items.
    pub fn eval_batch(id: u64, spec: &str, items: &[(usize, Vec<f64>)]) -> String {
        Json::Obj(vec![
            ("id".into(), Json::num(id as f64)),
            ("op".into(), Json::str("eval_batch")),
            ("spec".into(), Json::str(spec)),
            (
                "items".into(),
                Json::Arr(
                    items
                        .iter()
                        .map(|(t, x)| {
                            Json::Obj(vec![
                                ("topology".into(), Json::num(*t as f64)),
                                (
                                    "x".into(),
                                    Json::Arr(x.iter().map(|&v| Json::num(v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .encode()
        .expect("finite request")
    }

    /// A `size_opt` request.
    pub fn size_opt(
        id: u64,
        spec: &str,
        topology: usize,
        seed: u64,
        n_init: usize,
        n_iter: usize,
    ) -> String {
        Json::Obj(vec![
            ("id".into(), Json::num(id as f64)),
            ("op".into(), Json::str("size_opt")),
            ("spec".into(), Json::str(spec)),
            ("topology".into(), Json::num(topology as f64)),
            ("seed".into(), Json::num(seed as f64)),
            ("n_init".into(), Json::num(n_init as f64)),
            ("n_iter".into(), Json::num(n_iter as f64)),
        ])
        .encode()
        .expect("finite request")
    }

    /// A `stats` request.
    pub fn stats(id: u64) -> String {
        Json::Obj(vec![
            ("id".into(), Json::num(id as f64)),
            ("op".into(), Json::str("stats")),
        ])
        .encode()
        .expect("finite request")
    }
}
