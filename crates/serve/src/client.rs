//! A small synchronous client for the wire protocol, used by `oa-cli`
//! and the integration tests.
//!
//! [`Client::connect_with`] adds the resilience layer the chaos harness
//! exercises: a per-read timeout and bounded, deterministic
//! exponential-backoff retry ([`oa_fault::RetryPolicy`]). Retrying a
//! request blindly is safe because every endpoint is store-backed and
//! deterministic — resending the same line yields the same bytes, and a
//! half-applied request cannot exist ([`oa_store::Store::put`] either
//! lands a record or leaves no trace).

use std::fmt::Display;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use oa_fault::RetryPolicy;

use crate::json::Json;

/// Client resilience parameters.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Retry schedule for [`Client::request_with_retry`].
    pub retry: RetryPolicy,
    /// Per-read timeout in milliseconds; `None` blocks forever. A
    /// timeout surfaces as an `io::Error` (`WouldBlock`/`TimedOut`),
    /// which the retry path treats like any other failure: backoff,
    /// reconnect, resend.
    pub timeout_millis: Option<u64>,
}

impl Default for ClientConfig {
    /// No retry, no timeout — the behavior of [`Client::connect`].
    fn default() -> ClientConfig {
        ClientConfig {
            retry: RetryPolicy::disabled(),
            timeout_millis: None,
        }
    }
}

impl ClientConfig {
    /// The recommended resilient profile: 4 attempts with 10 ms → 100 ms
    /// capped backoff, 2 s read timeout.
    pub fn resilient() -> ClientConfig {
        ClientConfig {
            retry: RetryPolicy::default_client(),
            timeout_millis: Some(2_000),
        }
    }
}

/// Resolves an address *text* freshly — the helper behind every dial and
/// re-dial in this crate and in `oa-router`. Resolution happens on every
/// call on purpose: a shard restarted behind a DNS name (service
/// discovery, failover to a standby on a different address) must be
/// picked up by the next reconnect, not pinned to the first lookup.
///
/// # Errors
///
/// Resolution failures, or a name that resolves to nothing.
pub fn resolve(addr_text: &str) -> std::io::Result<Vec<SocketAddr>> {
    let addrs: Vec<SocketAddr> = addr_text.to_socket_addrs()?.collect();
    if addrs.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::AddrNotAvailable,
            format!("'{addr_text}' resolved to no addresses"),
        ));
    }
    Ok(addrs)
}

/// A connected client. One TCP connection; requests may be pipelined
/// (the server replies as jobs finish, tagged by `id`).
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    addr_text: String,
    config: ClientConfig,
}

impl Client {
    /// Connects to a running `oa-serve` with no timeout and no retry.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect<A: ToSocketAddrs + Display>(addr: A) -> std::io::Result<Client> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit resilience parameters.
    ///
    /// The address is kept as *text*, not as its first resolution:
    /// every [`Client::reconnect`] re-resolves it, so retrying against a
    /// shard that was restarted behind the same name (possibly on a new
    /// address) dials the fresh target instead of the stale one.
    ///
    /// # Errors
    ///
    /// Address resolution or connection failures.
    pub fn connect_with<A: ToSocketAddrs + Display>(
        addr: A,
        config: ClientConfig,
    ) -> std::io::Result<Client> {
        let addr_text = addr.to_string();
        let (writer, reader) = Self::open(&addr_text, config.timeout_millis)?;
        Ok(Client {
            writer,
            reader,
            addr_text,
            config,
        })
    }

    /// The address text this client dials (and re-resolves) on every
    /// connect.
    pub fn addr_text(&self) -> &str {
        &self.addr_text
    }

    fn open(
        addr_text: &str,
        timeout_millis: Option<u64>,
    ) -> std::io::Result<(TcpStream, BufReader<TcpStream>)> {
        let addrs = resolve(addr_text)?;
        let writer = TcpStream::connect(addrs.as_slice())?;
        writer.set_nodelay(true)?;
        if let Some(millis) = timeout_millis {
            writer.set_read_timeout(Some(Duration::from_millis(millis.max(1))))?;
        }
        let reader = BufReader::new(writer.try_clone()?);
        Ok((writer, reader))
    }

    /// Drops the current connection, **re-resolves the address text**
    /// and dials again (same timeout). Any buffered partial frame is
    /// discarded. Re-resolution is the point: the previous behavior
    /// cached the first resolved `SocketAddr` forever, which broke
    /// failover to a shard restarted behind the same name.
    ///
    /// # Errors
    ///
    /// Resolution or connection failures.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let (writer, reader) = Self::open(&self.addr_text, self.config.timeout_millis)?;
        self.writer = writer;
        self.reader = reader;
        Ok(())
    }

    /// Sends one request line (newline appended).
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Reads one response line (newline stripped).
    ///
    /// # Errors
    ///
    /// Socket read failures; `UnexpectedEof` on server disconnect —
    /// including a *mid-frame* disconnect, where bytes arrived but the
    /// terminating newline never did. A torn frame is never returned as
    /// if it were a response.
    pub fn recv_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        if !line.ends_with('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-frame",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// One request, one response.
    ///
    /// # Errors
    ///
    /// Socket failures.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.send_line(line)?;
        self.recv_line()
    }

    /// One request, one response, with the configured retry schedule:
    /// on any socket failure (including a read timeout or a mid-frame
    /// disconnect) sleep the deterministic backoff delay, reconnect and
    /// resend. Blind resends are safe — see the module docs.
    ///
    /// # Errors
    ///
    /// The last socket failure once the retry budget is exhausted.
    pub fn request_with_retry(&mut self, line: &str) -> std::io::Result<String> {
        let mut attempt = 0u32;
        loop {
            match self.send_line(line).and_then(|()| self.recv_line()) {
                Ok(response) => return Ok(response),
                Err(e) => match self.config.retry.backoff_millis(attempt) {
                    Some(delay) => {
                        std::thread::sleep(Duration::from_millis(delay));
                        attempt += 1;
                        // A failed reconnect is not fatal here: the next
                        // send fails fast and consumes the next attempt.
                        let _ = self.reconnect();
                    }
                    None => return Err(e),
                },
            }
        }
    }

    /// Pipelines every request line, then collects exactly as many
    /// responses, **in arrival order** (match them up by `id`).
    ///
    /// # Errors
    ///
    /// Socket failures.
    pub fn pipeline(&mut self, lines: &[String]) -> std::io::Result<Vec<String>> {
        for line in lines {
            self.send_line(line)?;
        }
        (0..lines.len()).map(|_| self.recv_line()).collect()
    }
}

/// Request-line builders (canonical field order, canonical floats) —
/// clients that build requests with these get maximal store reuse, since
/// equal requests are equal bytes.
pub mod request {
    use super::Json;

    /// An `eval` request.
    pub fn eval(id: u64, spec: &str, topology: usize, x: &[f64]) -> String {
        Json::Obj(vec![
            ("id".into(), Json::num(id as f64)),
            ("op".into(), Json::str("eval")),
            ("spec".into(), Json::str(spec)),
            ("topology".into(), Json::num(topology as f64)),
            (
                "x".into(),
                Json::Arr(x.iter().map(|&v| Json::num(v)).collect()),
            ),
        ])
        .encode()
        .expect("finite request")
    }

    /// An `eval_batch` request over `(topology, x)` items.
    pub fn eval_batch(id: u64, spec: &str, items: &[(usize, Vec<f64>)]) -> String {
        Json::Obj(vec![
            ("id".into(), Json::num(id as f64)),
            ("op".into(), Json::str("eval_batch")),
            ("spec".into(), Json::str(spec)),
            (
                "items".into(),
                Json::Arr(
                    items
                        .iter()
                        .map(|(t, x)| {
                            Json::Obj(vec![
                                ("topology".into(), Json::num(*t as f64)),
                                (
                                    "x".into(),
                                    Json::Arr(x.iter().map(|&v| Json::num(v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .encode()
        .expect("finite request")
    }

    /// A `size_opt` request.
    pub fn size_opt(
        id: u64,
        spec: &str,
        topology: usize,
        seed: u64,
        n_init: usize,
        n_iter: usize,
    ) -> String {
        Json::Obj(vec![
            ("id".into(), Json::num(id as f64)),
            ("op".into(), Json::str("size_opt")),
            ("spec".into(), Json::str(spec)),
            ("topology".into(), Json::num(topology as f64)),
            ("seed".into(), Json::num(seed as f64)),
            ("n_init".into(), Json::num(n_init as f64)),
            ("n_iter".into(), Json::num(n_iter as f64)),
        ])
        .encode()
        .expect("finite request")
    }

    /// A `stats` request.
    pub fn stats(id: u64) -> String {
        Json::Obj(vec![
            ("id".into(), Json::num(id as f64)),
            ("op".into(), Json::str("stats")),
        ])
        .encode()
        .expect("finite request")
    }
}
