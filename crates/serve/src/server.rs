//! The TCP front end: newline-delimited JSON over a bounded worker pool.
//!
//! One acceptor thread, one reader thread per connection, and a shared
//! [`oa_par::Pool`] that runs every request. The reader blocks in
//! [`oa_par::Pool::submit`] when the queue is full, so overload turns
//! into TCP backpressure instead of unbounded memory. Responses are
//! written as each job finishes — **possibly out of request order** —
//! and carry the request `id`, so clients can pipeline freely.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use oa_fault::{Decision, Faults, Site};
use oa_par::{JobHook, Pool};
use oa_store::Store;

use crate::service::{Service, ShardIdentity};

/// Live connection registry: stream clones keyed by a connection id, so
/// [`Server::kill`] can sever every peer. Connection threads remove
/// their own entry on exit, keeping the map bounded by live connections.
type ConnRegistry = Arc<Mutex<BTreeMap<u64, TcpStream>>>;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Worker threads evaluating requests.
    pub workers: usize,
    /// Bounded job-queue capacity (requests decoded but not yet
    /// evaluating; beyond this, readers block → TCP backpressure).
    pub queue: usize,
    /// Path of the persistent result-store log.
    pub store_path: PathBuf,
    /// Fault-injection plan shared by the store, the connection loops,
    /// the worker pool and the per-item batch path. [`Faults::none`]
    /// (the default) disables every site at the cost of one branch.
    pub faults: Faults,
    /// Shard identity when this instance is one backend of an
    /// `oa-router` fabric (`oa-serve --shard I/N`). Purely
    /// introspective: it is reported in `stats` (and the startup banner)
    /// so operators and the router's per-shard breakdown can tell
    /// instances apart. `None` (the default) changes nothing.
    pub shard: Option<ShardIdentity>,
    /// Cap on concurrently open optimization sessions
    /// ([`crate::DEFAULT_SESSION_LIMIT`] by default); `open_session`
    /// requests for new ids beyond it fail with a typed `session_limit`
    /// error.
    pub session_limit: usize,
}

impl ServerConfig {
    /// Loopback defaults: free port, `oa_par::jobs()` workers, queue of
    /// 256, store under `OA_STORE_DIR` (default `results/store`), no
    /// fault injection.
    pub fn loopback() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: oa_par::jobs(),
            queue: 256,
            store_path: default_store_dir().join("results.log"),
            faults: Faults::none(),
            shard: None,
            session_limit: crate::DEFAULT_SESSION_LIMIT,
        }
    }
}

/// The store directory from `OA_STORE_DIR`, defaulting to
/// `results/store`.
pub fn default_store_dir() -> PathBuf {
    PathBuf::from(std::env::var("OA_STORE_DIR").unwrap_or_else(|_| "results/store".to_owned()))
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops
/// accepting, drains queued jobs and joins the workers; connection
/// readers exit when their clients disconnect.
pub struct Server {
    addr: SocketAddr,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    conns: ConnRegistry,
}

impl Server {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (tests use this to read counters in-process).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Stops accepting and joins the acceptor thread. Established
    /// connections keep being served until their clients disconnect —
    /// the graceful drain.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    /// Hard kill: stops accepting **and severs every live connection**,
    /// so connected peers observe EOF immediately. This is what "the
    /// shard died" means to an `oa-router` front-end — the chaos harness
    /// uses it to take shards down mid-storm, and a restarted instance
    /// over the same store then serves byte-identical responses.
    pub fn kill(mut self) {
        self.stop_accepting();
        let conns = self.conns.lock().unwrap_or_else(|p| p.into_inner());
        for stream in conns.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Blocks until the acceptor exits (daemon mode: forever).
    pub fn join(mut self) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

/// Opens the store, binds the listener and starts serving.
///
/// # Errors
///
/// Store-open or bind failures.
pub fn serve(config: ServerConfig) -> std::io::Result<Server> {
    let faults = config.faults.clone();
    let store = Store::open_with_faults(&config.store_path, faults.clone())?;
    let service = Arc::new(
        Service::with_faults(store, faults.clone())
            .with_shard(config.shard)
            .with_session_limit(config.session_limit),
    );
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    // The worker-panic site is a pool hook: an injected panic fires
    // before the job runs, so the response for that request is simply
    // never produced — the client sees a timeout, exactly like a real
    // panic between dequeue and reply. The pool contains it.
    let hook: Option<JobHook> = if faults.is_active() {
        let plan = faults.clone();
        Some(Arc::new(move || {
            if let Decision::Panic = plan.decide(Site::WorkerJob, 0) {
                panic!("injected worker panic");
            }
        }))
    } else {
        None
    };
    let pool = Arc::new(Pool::with_hook(config.workers, config.queue, hook));
    let stop = Arc::new(AtomicBool::new(false));
    let conns: ConnRegistry = Arc::new(Mutex::new(BTreeMap::new()));

    let acceptor = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let conns = Arc::clone(&conns);
        let next_conn_id = AtomicU64::new(0);
        std::thread::Builder::new()
            .name("oa-serve-acceptor".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn_id = next_conn_id.fetch_add(1, Ordering::Relaxed);
                    if let Ok(clone) = stream.try_clone() {
                        let mut map = conns.lock().unwrap_or_else(|p| p.into_inner());
                        map.insert(conn_id, clone);
                    }
                    let service = Arc::clone(&service);
                    let pool = Arc::clone(&pool);
                    let faults = faults.clone();
                    let conns = Arc::clone(&conns);
                    let _ = std::thread::Builder::new()
                        .name("oa-serve-conn".to_owned())
                        .spawn(move || {
                            connection_loop(stream, &service, &pool, &faults);
                            let mut map = conns.lock().unwrap_or_else(|p| p.into_inner());
                            map.remove(&conn_id);
                        });
                }
                // `pool` drops with the acceptor once all connection
                // threads have released their clones, joining workers.
            })?
    };

    Ok(Server {
        addr,
        service,
        stop,
        acceptor: Some(acceptor),
        conns,
    })
}

fn connection_loop(stream: TcpStream, service: &Arc<Service>, pool: &Arc<Pool>, faults: &Faults) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        // Read-side faults: a dropped connection closes the socket with
        // the request unanswered; a stall delays it (latency, not bytes).
        match faults.decide(Site::ConnRead, line.len() as u64) {
            Decision::DropConn => break,
            Decision::Stall { millis } => std::thread::sleep(Duration::from_millis(millis)),
            _ => {}
        }
        let service = Arc::clone(service);
        let writer = Arc::clone(&writer);
        let faults = faults.clone();
        let submitted = pool.submit(move || {
            let mut response = service.handle_line(&line);
            response.push('\n');
            let mut w = writer.lock().unwrap_or_else(|p| p.into_inner());
            // Write-side fault: a mid-frame disconnect sends a torn
            // prefix (no newline) and shuts the socket down, so the
            // client sees a half frame followed by EOF — the worst
            // failure a real peer can observe.
            if let Decision::DropConn = faults.decide(Site::ConnWrite, response.len() as u64) {
                let torn = response.len() / 2;
                let _ = w.write_all(&response.as_bytes()[..torn]);
                let _ = w.shutdown(Shutdown::Both);
                return;
            }
            // One locked write per response keeps frames whole even when
            // jobs for the same connection finish on different workers.
            let _ = w.write_all(response.as_bytes());
        });
        if submitted.is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::json::Json;
    use oa_circuit::{ParamSpace, Topology};

    fn temp_config(tag: &str) -> (ServerConfig, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "oa_serve_tcp_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue: 8,
            store_path: dir.join("results.log"),
            faults: Faults::none(),
            shard: None,
            session_limit: crate::DEFAULT_SESSION_LIMIT,
        };
        (config, dir)
    }

    #[test]
    fn pipelined_requests_come_back_with_matching_ids() {
        let (config, dir) = temp_config("pipeline");
        let server = serve(config).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();

        let t = Topology::bare_cascade();
        let dim = ParamSpace::for_topology(&t).dim();
        let lines: Vec<String> = (0..20)
            .map(|i| {
                let x: Vec<String> = (0..dim)
                    .map(|d| format!("{:.17e}", 0.3 + 0.02 * ((i + d) % 10) as f64))
                    .collect();
                format!(
                    "{{\"id\":{i},\"op\":\"eval\",\"spec\":\"S-1\",\"topology\":{},\"x\":[{}]}}",
                    t.index(),
                    x.join(",")
                )
            })
            .collect();
        let responses = client.pipeline(&lines).unwrap();
        assert_eq!(responses.len(), 20);
        let mut seen: Vec<u64> = responses
            .iter()
            .map(|r| {
                let v = Json::parse(r).unwrap();
                assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{r}");
                v.get("id").unwrap().as_u64().unwrap()
            })
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<u64>>());
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multiple_connections_share_one_store() {
        let (config, dir) = temp_config("multi");
        let server = serve(config).unwrap();
        let t = Topology::bare_cascade();
        let dim = ParamSpace::for_topology(&t).dim();
        let line = format!(
            "{{\"id\":1,\"op\":\"eval\",\"spec\":\"S-3\",\"topology\":{},\"x\":[{}]}}",
            t.index(),
            vec!["0.5"; dim].join(",")
        );
        let mut a = Client::connect(server.addr()).unwrap();
        let mut b = Client::connect(server.addr()).unwrap();
        let ra = a.request(&line).unwrap();
        let rb = b.request(&line).unwrap();
        assert_eq!(ra, rb, "second connection must be served from the store");
        assert_eq!(server.service().sims(), 1);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
