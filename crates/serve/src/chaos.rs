//! Seeded chaos trials: replay a deterministic fault schedule against
//! the store and the server, and check the recovery invariants.
//!
//! A trial runs the same workload twice — once fault-free (the
//! baseline) and once under a seeded [`Faults`] plan with every injected
//! failure handled by the production recovery paths (put retry, client
//! reconnect/backoff, batch re-request). The invariants checked:
//!
//! 1. **Byte-identity** — after any injected crash/recovery sequence,
//!    the compacted store log and the client-visible responses are
//!    byte-identical to the fault-free baseline.
//! 2. **Determinism** — the same seed replays the same decision trace
//!    ([`Faults::trace_hash`]), so every chaos failure is reproducible
//!    from its seed alone.
//!
//! The `oa-chaos` binary drives these over the pinned corpus in
//! `tests/seeds/`; the `oa-fault` integration tests assert the same
//! invariants per seed.

use std::fs;
use std::io;
use std::path::Path;

use oa_circuit::{ParamSpace, Topology};
use oa_fault::{FaultConfig, FaultStats, Faults, RetryPolicy};
use oa_store::Store;

use crate::client::{request, Client, ClientConfig};
use crate::server::{serve, ServerConfig};

/// Put attempts per record before a store trial gives up (the schedule
/// advances every attempt, so consecutive injected failures decay
/// geometrically and this bound is never reached in practice).
const MAX_PUT_ATTEMPTS: usize = 64;

/// Re-requests of a batch line before a serve trial accepts injected
/// item errors as final.
const MAX_BATCH_ATTEMPTS: usize = 64;

/// The client profile every serve trial uses: patient enough for an
/// injected worker panic (which produces no response at all) to surface
/// as a read timeout, aggressive enough to keep trials fast.
fn trial_client_config() -> ClientConfig {
    ClientConfig {
        retry: RetryPolicy {
            max_attempts: 12,
            base_millis: 2,
            cap_millis: 20,
        },
        timeout_millis: Some(500),
    }
}

/// Parses a seed-corpus file: one decimal seed per line, `#` comments
/// and blank lines ignored.
///
/// # Errors
///
/// Read failures, or a line that is neither a seed, a comment nor blank.
pub fn load_seed_corpus(path: &Path) -> io::Result<Vec<u64>> {
    let text = fs::read_to_string(path)?;
    let mut seeds = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let seed = line.parse::<u64>().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}:{}: bad seed '{line}'", path.display(), lineno + 1),
            )
        })?;
        seeds.push(seed);
    }
    Ok(seeds)
}

/// The outcome of one seeded store trial.
#[derive(Debug, Clone)]
pub struct StoreTrial {
    /// The seed the fault plan ran under.
    pub seed: u64,
    /// Records in the workload.
    pub records: usize,
    /// Injected put failures that were retried to success.
    pub retried_puts: u64,
    /// Mid-trial compactions failed by the plan (log left untouched).
    pub failed_compactions: u64,
    /// Whether the post-recovery compacted log byte-matches the
    /// fault-free baseline — the trial's pass/fail verdict.
    pub matches_baseline: bool,
    /// Hash of the recorded decision trace (replay fingerprint).
    pub trace_hash: u64,
    /// Decision counters.
    pub stats: FaultStats,
}

/// Deterministic workload derived from the seed: distinct keys,
/// variable-length pseudorandom values (zeros and 0xFF runs included).
fn store_workload(seed: u64) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut draw = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..40)
        .map(|i| {
            let key = format!("chaos/{seed}/{i}").into_bytes();
            let len = (draw() % 64) as usize;
            let value: Vec<u8> = (0..len).map(|_| draw() as u8).collect();
            (key, value)
        })
        .collect()
}

/// Runs one seeded store trial under `dir` (created; caller removes).
///
/// The faulty run appends the workload with per-put retry, attempts a
/// compaction mid-way, then "crashes" (drops the handle), recovers by
/// reopening fault-free, and compacts. The baseline run does the same
/// workload with no faults.
///
/// # Errors
///
/// I/O failures outside the injected schedule (environment problems),
/// or a put still failing after `MAX_PUT_ATTEMPTS` retries.
pub fn store_trial(dir: &Path, seed: u64) -> io::Result<StoreTrial> {
    let records = store_workload(seed);
    let faults = Faults::seeded(seed, FaultConfig::store_storm());

    // Baseline: same workload, no faults, one final compaction.
    let base_path = dir.join("baseline").join("log");
    let mut base = Store::open(&base_path)?;
    for (k, v) in &records {
        base.put(k, v)?;
    }
    base.compact()?;
    drop(base);
    let baseline = fs::read(&base_path)?;

    // Faulty run: every failure handled by the production paths.
    let chaos_path = dir.join("chaos").join("log");
    let mut store = Store::open_with_faults(&chaos_path, faults.clone())?;
    let mut retried_puts = 0u64;
    let mut failed_compactions = 0u64;
    for (i, (k, v)) in records.iter().enumerate() {
        let mut attempts = 0usize;
        while let Err(e) = store.put(k, v) {
            attempts += 1;
            retried_puts += 1;
            if attempts >= MAX_PUT_ATTEMPTS {
                return Err(io::Error::other(format!(
                    "seed {seed}: put of record {i} still failing after {attempts} attempts: {e}"
                )));
            }
        }
        // A compaction attempt mid-workload; an injected tear leaves the
        // log untouched and the torn temp file behind.
        if i == records.len() / 2 && store.compact().is_err() {
            failed_compactions += 1;
        }
    }
    // Crash: drop the handle with whatever torn bytes the schedule left.
    drop(store);

    // Recovery: reopen fault-free (scan + torn-tail truncation + stale
    // compaction-temp cleanup), then compact.
    let mut recovered = Store::open(&chaos_path)?;
    let complete = records
        .iter()
        .all(|(k, v)| recovered.get(k).as_deref() == Some(v.as_slice()));
    recovered.compact()?;
    drop(recovered);
    let final_bytes = fs::read(&chaos_path)?;

    Ok(StoreTrial {
        seed,
        records: records.len(),
        retried_puts,
        failed_compactions,
        matches_baseline: complete && final_bytes == baseline,
        trace_hash: faults.trace_hash(),
        stats: faults.stats(),
    })
}

/// The outcome of one seeded serve trial.
#[derive(Debug, Clone)]
pub struct ServeTrial {
    /// The seed the fault plan ran under.
    pub seed: u64,
    /// The request lines, in issue order (paired with `responses` —
    /// protocol-conformance replays feed on the pairs).
    pub requests: Vec<String>,
    /// Responses from the faulty server, in request order.
    pub responses: Vec<String>,
    /// Whether every response byte-matches the fault-free baseline —
    /// the trial's pass/fail verdict.
    pub matches_baseline: bool,
    /// Hash of the recorded decision trace (replay fingerprint).
    pub trace_hash: u64,
    /// Decision counters.
    pub stats: FaultStats,
}

/// The serve-trial request set: a handful of `eval`s across distinct
/// topologies plus one `eval_batch`. Returns `(line, is_batch)`.
fn serve_requests() -> Vec<(String, bool)> {
    let mut lines = Vec::new();
    let mut items = Vec::new();
    for (id, index) in [0usize, 97, 1031, 4_444, 17_001].into_iter().enumerate() {
        let t = Topology::from_index(index % oa_circuit::DESIGN_SPACE_SIZE)
            .unwrap_or_else(|_| Topology::bare_cascade());
        let dim = ParamSpace::for_topology(&t).dim();
        let x: Vec<f64> = (0..dim)
            .map(|j| 0.25 + 0.5 * (j as f64) / dim.max(1) as f64)
            .collect();
        lines.push((request::eval(id as u64, "S-1", t.index(), &x), false));
        if items.len() < 3 {
            items.push((t.index(), x));
        }
    }
    lines.push((request::eval_batch(99, "S-1", &items), true));
    lines
}

/// Runs one seeded serve trial under `dir` (created; caller removes).
///
/// The faulty server runs the full serve storm — dropped and stalled
/// connections, mid-frame disconnects, worker panics, per-item batch
/// errors — against a retrying client. `eval` responses must survive
/// retries byte-identically; the batch line is re-requested until the
/// schedule stops failing its items, at which point it too must
/// byte-match the baseline.
///
/// # Errors
///
/// Bind/store failures, or a request still failing after the bounded
/// retry/re-request budget.
pub fn serve_trial(dir: &Path, seed: u64) -> io::Result<ServeTrial> {
    let requests = serve_requests();

    // Baseline: fault-free server, plain client.
    let mut base_config = ServerConfig::loopback();
    base_config.store_path = dir.join("baseline.log");
    let base_server = serve(base_config)?;
    let mut base_client = Client::connect(base_server.addr())?;
    let mut baseline = Vec::with_capacity(requests.len());
    for (line, _) in &requests {
        baseline.push(base_client.request(line)?);
    }
    drop(base_client);
    base_server.shutdown();

    // Faulty run: serve storm vs the resilient client.
    let faults = Faults::seeded(seed, FaultConfig::serve_storm());
    let mut config = ServerConfig::loopback();
    config.store_path = dir.join("chaos.log");
    config.workers = 2;
    config.faults = faults.clone();
    let server = serve(config)?;
    let mut client = Client::connect_with(server.addr(), trial_client_config())?;
    let mut responses = Vec::with_capacity(requests.len());
    for (line, is_batch) in &requests {
        let mut response = client.request_with_retry(line)?;
        if *is_batch {
            // Injected per-item errors are correct degraded behavior,
            // not the final answer: re-request until the schedule lets
            // the batch through clean, then demand byte-identity.
            let mut attempts = 1usize;
            let injected_marker = format!("\"kind\":\"{}\"", crate::wire_kinds::INJECTED);
            while response.contains(&injected_marker) && attempts < MAX_BATCH_ATTEMPTS {
                attempts += 1;
                response = client.request_with_retry(line)?;
            }
        }
        responses.push(response);
    }
    drop(client);
    server.shutdown();

    let matches_baseline = responses == baseline;
    Ok(ServeTrial {
        seed,
        requests: requests.into_iter().map(|(line, _)| line).collect(),
        responses,
        matches_baseline,
        trace_hash: faults.trace_hash(),
        stats: faults.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "oa_chaos_mod_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn seed_corpus_parses_comments_and_blanks() {
        let dir = temp_dir("corpus");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seeds.txt");
        fs::write(&path, "# corpus\n7\n\n21 # inline\n9000\n").unwrap();
        assert_eq!(load_seed_corpus(&path).unwrap(), vec![7, 21, 9000]);
        fs::write(&path, "7\nnot-a-seed\n").unwrap();
        assert!(load_seed_corpus(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_workload_is_seed_deterministic() {
        assert_eq!(store_workload(5), store_workload(5));
        assert_ne!(store_workload(5), store_workload(6));
    }

    #[test]
    fn store_trial_recovers_byte_identically_and_replays() {
        let dir = temp_dir("store");
        let a = store_trial(&dir.join("a"), 42).unwrap();
        let b = store_trial(&dir.join("b"), 42).unwrap();
        assert!(a.matches_baseline, "recovery must byte-match baseline");
        assert!(b.matches_baseline);
        assert_eq!(a.trace_hash, b.trace_hash, "same seed, same schedule");
        assert_eq!(a.retried_puts, b.retried_puts);
        assert!(a.stats.injected > 0, "storm must inject");
        let _ = fs::remove_dir_all(&dir);
    }
}
