//! Store chaos matrix over the pinned seed corpus: every seed's
//! crash/recovery sequence must end byte-identical to a fault-free
//! baseline, and every schedule must replay exactly (same seed, same
//! trace hash).

use std::fs;
use std::path::PathBuf;

use oa_serve::chaos::{load_seed_corpus, store_trial};

fn corpus() -> Vec<u64> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/seeds/chaos.txt");
    let seeds = load_seed_corpus(&path).expect("pinned seed corpus must parse");
    assert!(!seeds.is_empty(), "seed corpus must not be empty");
    seeds
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("oa_fault_it_store_{tag}_{}", std::process::id()))
}

#[test]
fn every_corpus_seed_recovers_byte_identically() {
    let dir = temp_dir("bytes");
    let mut total_injected = 0u64;
    for seed in corpus() {
        let trial = store_trial(&dir.join(format!("s{seed}")), seed)
            .unwrap_or_else(|e| panic!("seed {seed}: trial failed to run: {e}"));
        assert!(
            trial.matches_baseline,
            "seed {seed}: post-recovery store diverges from fault-free baseline \
             (trace {:016x})",
            trial.trace_hash
        );
        total_injected += trial.stats.injected;
    }
    assert!(
        total_injected > 0,
        "the corpus must actually inject faults for the invariant to mean anything"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn every_corpus_seed_replays_the_same_trace() {
    let dir = temp_dir("trace");
    for seed in corpus() {
        let a = store_trial(&dir.join(format!("a{seed}")), seed).unwrap();
        let b = store_trial(&dir.join(format!("b{seed}")), seed).unwrap();
        assert_eq!(
            a.trace_hash, b.trace_hash,
            "seed {seed}: two runs of the same schedule diverged"
        );
        assert_eq!(a.retried_puts, b.retried_puts, "seed {seed}");
        assert_eq!(a.failed_compactions, b.failed_compactions, "seed {seed}");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn distinct_seeds_produce_distinct_schedules() {
    let dir = temp_dir("distinct");
    let seeds = corpus();
    let mut hashes: Vec<u64> = seeds
        .iter()
        .map(|&seed| {
            store_trial(&dir.join(format!("d{seed}")), seed)
                .unwrap()
                .trace_hash
        })
        .collect();
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(
        hashes.len(),
        seeds.len(),
        "two corpus seeds collapsed onto one schedule"
    );
    let _ = fs::remove_dir_all(&dir);
}
