//! Serve chaos trials: under the full serve storm (dropped/stalled
//! connections, mid-frame disconnects, worker panics, per-item batch
//! errors) a retrying client must end up with responses byte-identical
//! to a fault-free server, and the schedule must replay exactly.
//! Every surviving trace must additionally be *accepted* by the
//! protocol automaton compiled from `crates/serve/protocol.spec`.
//!
//! Serve trials pay real timeouts for injected worker panics, so only a
//! slice of the corpus runs here; the full corpus runs in the `oa-chaos`
//! binary (CI `chaos` job).

use std::fs;
use std::path::PathBuf;

use oa_analyze::protocol::{Automaton, ProtocolSpec};
use oa_serve::chaos::{load_seed_corpus, serve_trial};

/// Replays the trial's request/response pairs through the conformance
/// automaton: what clients saw under the storm must still be the
/// declared protocol, frame by frame.
fn assert_conforms(seed: u64, requests: &[String], responses: &[String]) {
    let spec = ProtocolSpec::parse(include_str!("../../serve/protocol.spec"))
        .expect("protocol.spec must parse");
    assert_eq!(requests.len(), responses.len(), "seed {seed}: ragged trace");
    let mut automaton = Automaton::new(&spec);
    for (req, resp) in requests.iter().zip(responses) {
        automaton.observe(req, resp).unwrap_or_else(|e| {
            panic!("seed {seed}: trace violates protocol.spec: {e}\n  > {req}\n  < {resp}")
        });
    }
}

/// The corpus head by default; the whole corpus under `OA_CHAOS_FULL=1`
/// (the CI chaos job sets it, so every pinned seed's trace goes through
/// the conformance automaton there).
fn corpus_head(n: usize) -> Vec<u64> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/seeds/chaos.txt");
    let mut seeds = load_seed_corpus(&path).expect("pinned seed corpus must parse");
    if std::env::var_os("OA_CHAOS_FULL").is_none() {
        seeds.truncate(n);
    }
    seeds
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("oa_fault_it_serve_{tag}_{}", std::process::id()))
}

#[test]
fn responses_survive_the_serve_storm_byte_identically() {
    let dir = temp_dir("bytes");
    for seed in corpus_head(2) {
        let trial = serve_trial(&dir.join(format!("s{seed}")), seed)
            .unwrap_or_else(|e| panic!("seed {seed}: trial failed to run: {e}"));
        assert!(
            trial.matches_baseline,
            "seed {seed}: responses diverge from the fault-free baseline \
             (trace {:016x}):\n{}",
            trial.trace_hash,
            trial.responses.join("\n")
        );
        assert!(
            trial.stats.injected > 0,
            "seed {seed}: the storm must inject for the invariant to mean anything"
        );
        assert_conforms(seed, &trial.requests, &trial.responses);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn serve_schedule_replays_the_same_trace() {
    let dir = temp_dir("trace");
    let seed = corpus_head(1)[0];
    let a = serve_trial(&dir.join("a"), seed).unwrap();
    let b = serve_trial(&dir.join("b"), seed).unwrap();
    assert_eq!(
        a.trace_hash, b.trace_hash,
        "seed {seed}: two runs of the same serve schedule diverged"
    );
    assert_eq!(a.responses, b.responses, "seed {seed}");
    let _ = fs::remove_dir_all(&dir);
}
