//! Deterministic bounded retry with exponential backoff.
//!
//! The serving clients retry transient transport failures (dropped
//! connections, timeouts, mid-frame disconnects) against a store-backed
//! server, where a retried request is served byte-identically — so
//! retries are safe by construction and the only question is pacing.
//! The schedule here is *deterministic*: no jitter, no clock reads.
//! Reproducibility of a chaos run beats thundering-herd smoothing at
//! this scale, and the fault layer's own stalls already decorrelate
//! concurrent clients in tests.

/// A bounded exponential-backoff schedule.
///
/// Attempt `k` (0-based) sleeps `min(cap_millis, base_millis << k)`
/// before retrying; after `max_attempts` total attempts the last error
/// is returned to the caller.
///
/// # Examples
///
/// ```
/// let policy = oa_fault::RetryPolicy {
///     max_attempts: 4,
///     base_millis: 10,
///     cap_millis: 40,
/// };
/// let delays: Vec<u64> = policy.delays().collect();
/// assert_eq!(delays, vec![10, 20, 40]); // one fewer than attempts
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try included). 0 is treated as 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, milliseconds.
    pub base_millis: u64,
    /// Upper bound on any single backoff, milliseconds.
    pub cap_millis: u64,
}

impl RetryPolicy {
    /// No retries: one attempt, immediate failure propagation.
    pub const fn disabled() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_millis: 0,
            cap_millis: 0,
        }
    }

    /// The serving clients' default: 4 attempts, 10 ms doubling to a
    /// 100 ms cap — bounded worst-case wait of 170 ms per request.
    pub const fn default_client() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_millis: 10,
            cap_millis: 100,
        }
    }

    /// Total attempts, never less than 1.
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// The backoff (milliseconds) after failed attempt `attempt`
    /// (0-based), or `None` when the budget is exhausted and the error
    /// should propagate.
    pub fn backoff_millis(&self, attempt: u32) -> Option<u64> {
        if attempt + 1 >= self.attempts() {
            return None;
        }
        let shifted = match attempt {
            a if a >= 63 => u64::MAX,
            a => self.base_millis.saturating_mul(1u64 << a),
        };
        Some(shifted.min(self.cap_millis))
    }

    /// The full backoff schedule: one delay per retry, in order.
    pub fn delays(&self) -> impl Iterator<Item = u64> + '_ {
        (0..).map_while(|attempt| self.backoff_millis(attempt))
    }

    /// Worst-case total backoff across every retry, milliseconds.
    pub fn total_backoff_millis(&self) -> u64 {
        self.delays().fold(0u64, u64::saturating_add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_exponential_then_capped() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_millis: 5,
            cap_millis: 33,
        };
        let delays: Vec<u64> = p.delays().collect();
        assert_eq!(delays, vec![5, 10, 20, 33, 33]);
        assert_eq!(p.total_backoff_millis(), 101);
    }

    #[test]
    fn disabled_policy_never_sleeps() {
        let p = RetryPolicy::disabled();
        assert_eq!(p.attempts(), 1);
        assert_eq!(p.backoff_millis(0), None);
        assert_eq!(p.delays().count(), 0);
    }

    #[test]
    fn zero_attempts_is_clamped_to_one() {
        let p = RetryPolicy {
            max_attempts: 0,
            base_millis: 10,
            cap_millis: 100,
        };
        assert_eq!(p.attempts(), 1);
        assert_eq!(p.backoff_millis(0), None);
    }

    #[test]
    fn huge_attempt_numbers_saturate_instead_of_overflowing() {
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            base_millis: u64::MAX / 2,
            cap_millis: u64::MAX,
        };
        assert_eq!(p.backoff_millis(80), Some(u64::MAX));
        assert_eq!(p.backoff_millis(2), Some(u64::MAX));
    }

    #[test]
    fn schedule_is_deterministic() {
        let p = RetryPolicy::default_client();
        let a: Vec<u64> = p.delays().collect();
        let b: Vec<u64> = p.delays().collect();
        assert_eq!(a, b);
        assert_eq!(a, vec![10, 20, 40]);
    }
}
