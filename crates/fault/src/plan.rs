//! The seeded fault schedule: sites, decisions, plan state and the
//! shareable [`Faults`] handle.

use std::fmt;
use std::sync::{Arc, Mutex};

/// Where in the stack a fault can be injected.
///
/// Each site corresponds to one instrumented operation in `oa-store`,
/// `oa-serve` or `oa-par`; the site a decision was made for is part of
/// the recorded trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Site {
    /// `oa-store::Store::put` — the record append (torn/short write).
    StoreWrite,
    /// `oa-store::Store::put` — the fsync after a successful append.
    StoreSync,
    /// `oa-store::Store::compact` — the rewrite of the new log file
    /// (torn tail in the *new* file, before the atomic rename).
    StoreCompact,
    /// `oa-serve` connection reader — one decoded request line
    /// (dropped or stalled connection).
    ConnRead,
    /// `oa-serve` response writer — one encoded response frame
    /// (mid-frame disconnect).
    ConnWrite,
    /// `oa-par::Pool` — immediately before a worker runs a job
    /// (worker-panic injection).
    WorkerJob,
    /// `oa-serve` `eval_batch` — one item of a batch (typed per-item
    /// evaluation error).
    EvalItem,
    /// `oa-router` backend forward — the router's connection to a shard,
    /// decided immediately before a sub-request is written (dropping it
    /// forces the failover path: mark down, re-dispatch, reconnect).
    ShardDrop,
    /// `oa-router` response writer — one response frame to a client
    /// (stalled write; the event loop pays the latency).
    RouterWrite,
    /// `oa-serve` session `step` — decided at the top of the handler,
    /// before any session state mutates, so a failed step is
    /// state-preserving: the client re-requests and receives exactly
    /// the step the fault displaced.
    SessionStep,
}

impl Site {
    /// Stable lowercase name used in traces.
    pub fn name(self) -> &'static str {
        match self {
            Site::StoreWrite => "store_write",
            Site::StoreSync => "store_sync",
            Site::StoreCompact => "store_compact",
            Site::ConnRead => "conn_read",
            Site::ConnWrite => "conn_write",
            Site::WorkerJob => "worker_job",
            Site::EvalItem => "eval_item",
            Site::ShardDrop => "shard_drop",
            Site::RouterWrite => "router_write",
            Site::SessionStep => "session_step",
        }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What the plan tells an injection point to do.
///
/// Injection points interpret decisions mechanically and must not make
/// further random choices of their own — every random quantity (how many
/// bytes of a torn write land, how long a stall lasts) is already fixed
/// in the decision, so the trace alone replays the failure byte-exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// No fault: perform the operation normally.
    Pass,
    /// Write only the first `keep` bytes of the frame, then fail as if
    /// the process crashed mid-write. `keep` is strictly less than the
    /// frame length.
    TornWrite {
        /// Bytes of the frame that reach the file.
        keep: u64,
    },
    /// Perform the write but fail the following fsync (the bytes may or
    /// may not be durable — exactly the ambiguity a real sync failure
    /// leaves behind).
    FailSync,
    /// Close the connection immediately.
    DropConn,
    /// Stall the operation for `millis` before continuing normally.
    Stall {
        /// Injected delay in milliseconds.
        millis: u64,
    },
    /// Panic the current worker thread.
    Panic,
    /// Fail this batch item with a typed injected error.
    FailItem,
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Decision::Pass => f.write_str("pass"),
            Decision::TornWrite { keep } => write!(f, "torn({keep})"),
            Decision::FailSync => f.write_str("fail_sync"),
            Decision::DropConn => f.write_str("drop_conn"),
            Decision::Stall { millis } => write!(f, "stall({millis})"),
            Decision::Panic => f.write_str("panic"),
            Decision::FailItem => f.write_str("fail_item"),
        }
    }
}

/// Per-site injection probabilities, in per-mille (0 = never,
/// 1000 = always). All-zero ([`FaultConfig::default`]) injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultConfig {
    /// Probability of a torn (short) record append.
    pub torn_write_per_mille: u16,
    /// Probability of a failed fsync after a complete append.
    pub fail_sync_per_mille: u16,
    /// Probability of a torn tail in the new file during compaction.
    pub compact_tear_per_mille: u16,
    /// Probability of dropping a connection at a request read.
    pub drop_read_per_mille: u16,
    /// Probability of a mid-frame disconnect while writing a response.
    pub drop_write_per_mille: u16,
    /// Probability of stalling a request read.
    pub stall_per_mille: u16,
    /// Upper bound (exclusive of 0) for injected stalls, milliseconds.
    pub stall_max_millis: u64,
    /// Probability of panicking a worker before it runs a job.
    pub worker_panic_per_mille: u16,
    /// Probability of failing one `eval_batch` item with a typed error.
    pub item_error_per_mille: u16,
    /// Probability of the router dropping a shard connection right
    /// before forwarding a sub-request.
    pub shard_drop_per_mille: u16,
    /// Probability of stalling a router response write (bounded by
    /// `stall_max_millis`).
    pub router_stall_per_mille: u16,
    /// Probability of failing one session `step` with a typed injected
    /// error before any state mutates.
    pub session_step_per_mille: u16,
}

impl FaultConfig {
    /// Aggressive store-only profile: frequent torn writes, failed
    /// syncs, and compaction tears. Used by the store chaos matrix.
    pub fn store_storm() -> FaultConfig {
        FaultConfig {
            torn_write_per_mille: 250,
            fail_sync_per_mille: 100,
            compact_tear_per_mille: 500,
            ..FaultConfig::default()
        }
    }

    /// Aggressive serve-side profile: dropped/stalled connections,
    /// mid-frame disconnects, worker panics and per-item errors. Store
    /// faults stay off so the serve invariants are isolated.
    pub fn serve_storm() -> FaultConfig {
        FaultConfig {
            drop_read_per_mille: 100,
            drop_write_per_mille: 150,
            stall_per_mille: 100,
            stall_max_millis: 5,
            worker_panic_per_mille: 150,
            item_error_per_mille: 200,
            ..FaultConfig::default()
        }
    }

    /// Router-side profile: frequent shard-connection drops (failover
    /// exercise) and stalled response writes. Shard backends stay
    /// fault-free so the router invariants are isolated.
    pub fn router_storm() -> FaultConfig {
        FaultConfig {
            shard_drop_per_mille: 120,
            router_stall_per_mille: 80,
            stall_max_millis: 3,
            ..FaultConfig::default()
        }
    }

    /// Session-trial profile: frequent mid-step failures on the shard
    /// side. Everything else stays off so session chaos trials compose
    /// it with [`FaultConfig::router_storm`] on the router — the step
    /// failures exercise the client's retry path while the router storm
    /// and the trial's shard kill exercise failover and replay.
    pub fn session_storm() -> FaultConfig {
        FaultConfig {
            session_step_per_mille: 200,
            ..FaultConfig::default()
        }
    }

    /// Everything at once — the full chaos matrix profile.
    pub fn storm() -> FaultConfig {
        FaultConfig {
            torn_write_per_mille: 150,
            fail_sync_per_mille: 80,
            compact_tear_per_mille: 300,
            drop_read_per_mille: 80,
            drop_write_per_mille: 100,
            stall_per_mille: 80,
            stall_max_millis: 5,
            worker_panic_per_mille: 100,
            item_error_per_mille: 150,
            shard_drop_per_mille: 120,
            router_stall_per_mille: 80,
            session_step_per_mille: 150,
        }
    }
}

/// One recorded decision: the `seq`-th call of the plan, at `site`,
/// yielding `decision`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// 0-based position in the plan's decision sequence.
    pub seq: u64,
    /// The injection point that asked.
    pub site: Site,
    /// What the plan decided.
    pub decision: Decision,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.seq, self.site, self.decision)
    }
}

/// Counters over a plan's decisions so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Total `decide` calls.
    pub decisions: u64,
    /// Decisions other than [`Decision::Pass`].
    pub injected: u64,
}

/// The mutable schedule state: seeded rng, config, and the trace.
///
/// Normally owned by a [`Faults`] handle behind a mutex; exposed for
/// tests that want single-threaded, handle-free access.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    state: u64,
    config: FaultConfig,
    seq: u64,
    injected: u64,
    trace: Vec<TraceEvent>,
}

impl FaultPlan {
    /// Creates a plan from a seed and per-site probabilities.
    pub fn new(seed: u64, config: FaultConfig) -> FaultPlan {
        FaultPlan {
            // xorshift needs a nonzero state; fold the seed through a
            // splitmix-style scramble so 0 and 1 diverge immediately.
            state: scramble(seed),
            config,
            seq: 0,
            injected: 0,
            trace: Vec::new(),
        }
    }

    /// One xorshift64* draw.
    fn draw(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Rolls a per-mille probability.
    fn roll(&mut self, per_mille: u16) -> bool {
        // Drawing unconditionally (even for 0-probability sites) keeps
        // the stream position a function of the call sequence alone, so
        // changing one probability never shifts unrelated decisions.
        let d = self.draw() % 1000;
        d < u64::from(per_mille.min(1000))
    }

    /// Decides what happens at `site`. `ctx` carries the frame length
    /// in bytes for write sites (so torn writes can pick an exact torn
    /// point) and is ignored elsewhere.
    pub fn decide(&mut self, site: Site, ctx: u64) -> Decision {
        let decision = self.sample(site, ctx);
        let event = TraceEvent {
            seq: self.seq,
            site,
            decision,
        };
        self.seq += 1;
        if decision != Decision::Pass {
            self.injected += 1;
        }
        self.trace.push(event);
        decision
    }

    /// Every site consumes a *fixed* number of draws per call — rolls
    /// and payload draws (torn byte counts, stall durations) happen
    /// unconditionally — so whether a fault triggers never shifts the
    /// stream positions later sites see.
    fn sample(&mut self, site: Site, ctx: u64) -> Decision {
        match site {
            Site::StoreWrite => {
                let torn = self.roll(self.config.torn_write_per_mille);
                let keep = self.draw() % ctx.max(1);
                if torn {
                    Decision::TornWrite { keep }
                } else {
                    Decision::Pass
                }
            }
            Site::StoreSync => {
                if self.roll(self.config.fail_sync_per_mille) {
                    Decision::FailSync
                } else {
                    Decision::Pass
                }
            }
            Site::StoreCompact => {
                let torn = self.roll(self.config.compact_tear_per_mille);
                let keep = self.draw() % ctx.max(1);
                if torn {
                    Decision::TornWrite { keep }
                } else {
                    Decision::Pass
                }
            }
            Site::ConnRead => {
                let dropped = self.roll(self.config.drop_read_per_mille);
                let stalled = self.roll(self.config.stall_per_mille);
                let millis = 1 + self.draw() % self.config.stall_max_millis.max(1);
                if dropped {
                    Decision::DropConn
                } else if stalled {
                    Decision::Stall { millis }
                } else {
                    Decision::Pass
                }
            }
            Site::ConnWrite => {
                if self.roll(self.config.drop_write_per_mille) {
                    Decision::DropConn
                } else {
                    Decision::Pass
                }
            }
            Site::WorkerJob => {
                if self.roll(self.config.worker_panic_per_mille) {
                    Decision::Panic
                } else {
                    Decision::Pass
                }
            }
            Site::EvalItem => {
                if self.roll(self.config.item_error_per_mille) {
                    Decision::FailItem
                } else {
                    Decision::Pass
                }
            }
            Site::ShardDrop => {
                if self.roll(self.config.shard_drop_per_mille) {
                    Decision::DropConn
                } else {
                    Decision::Pass
                }
            }
            Site::RouterWrite => {
                let stalled = self.roll(self.config.router_stall_per_mille);
                let millis = 1 + self.draw() % self.config.stall_max_millis.max(1);
                if stalled {
                    Decision::Stall { millis }
                } else {
                    Decision::Pass
                }
            }
            Site::SessionStep => {
                if self.roll(self.config.session_step_per_mille) {
                    Decision::FailItem
                } else {
                    Decision::Pass
                }
            }
        }
    }

    /// The recorded decision sequence.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Counters so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            decisions: self.seq,
            injected: self.injected,
        }
    }

    /// FNV-1a hash over the formatted trace — two plans with equal
    /// hashes made identical decisions in identical order.
    pub fn trace_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for event in &self.trace {
            for b in event.to_string().bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= u64::from(b'\n');
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// SplitMix64 finalizer: seeds the xorshift state non-degenerately.
fn scramble(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let z = z ^ (z >> 31);
    // xorshift cycles on 0 forever; any fixed nonzero fallback keeps
    // seed-distinctness for every other input.
    if z == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        z
    }
}

/// The shareable injection handle threaded through `oa-store`,
/// `oa-serve` and `oa-par`.
///
/// [`Faults::none`] (and `Default`) is the disabled handle: every
/// [`Faults::decide`] returns [`Decision::Pass`] after a single `None`
/// check. A seeded handle shares one [`FaultPlan`] behind a mutex, so
/// clones injected into different layers draw from one global schedule.
#[derive(Debug, Clone, Default)]
pub struct Faults {
    inner: Option<Arc<Mutex<FaultPlan>>>,
}

impl Faults {
    /// The disabled handle — injects nothing, records nothing.
    pub fn none() -> Faults {
        Faults { inner: None }
    }

    /// A seeded handle over a fresh [`FaultPlan`].
    pub fn seeded(seed: u64, config: FaultConfig) -> Faults {
        Faults {
            inner: Some(Arc::new(Mutex::new(FaultPlan::new(seed, config)))),
        }
    }

    /// Whether this handle can inject at all.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Decides what happens at `site` (see [`FaultPlan::decide`]).
    /// Disabled handles always return [`Decision::Pass`].
    pub fn decide(&self, site: Site, ctx: u64) -> Decision {
        match &self.inner {
            None => Decision::Pass,
            Some(plan) => {
                let mut plan = plan.lock().unwrap_or_else(|p| p.into_inner());
                plan.decide(site, ctx)
            }
        }
    }

    /// The formatted trace lines recorded so far (empty when disabled).
    pub fn trace(&self) -> Vec<String> {
        match &self.inner {
            None => Vec::new(),
            Some(plan) => {
                let plan = plan.lock().unwrap_or_else(|p| p.into_inner());
                plan.trace().iter().map(TraceEvent::to_string).collect()
            }
        }
    }

    /// The trace hash (see [`FaultPlan::trace_hash`]; a fixed constant
    /// when disabled).
    pub fn trace_hash(&self) -> u64 {
        match &self.inner {
            None => 0xcbf2_9ce4_8422_2325,
            Some(plan) => {
                let plan = plan.lock().unwrap_or_else(|p| p.into_inner());
                plan.trace_hash()
            }
        }
    }

    /// Counters so far (zeros when disabled).
    pub fn stats(&self) -> FaultStats {
        match &self.inner {
            None => FaultStats::default(),
            Some(plan) => {
                let plan = plan.lock().unwrap_or_else(|p| p.into_inner());
                plan.stats()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(faults: &Faults, n: usize) {
        for i in 0..n {
            let site = match i % 7 {
                0 => Site::StoreWrite,
                1 => Site::StoreSync,
                2 => Site::StoreCompact,
                3 => Site::ConnRead,
                4 => Site::ConnWrite,
                5 => Site::WorkerJob,
                _ => Site::EvalItem,
            };
            let _ = faults.decide(site, 128);
        }
    }

    #[test]
    fn disabled_handle_is_pass_only_and_traceless() {
        let faults = Faults::none();
        for _ in 0..50 {
            assert_eq!(faults.decide(Site::StoreWrite, 64), Decision::Pass);
        }
        assert!(faults.trace().is_empty());
        assert_eq!(faults.stats(), FaultStats::default());
    }

    #[test]
    fn same_seed_same_trace_hash() {
        let a = Faults::seeded(7, FaultConfig::storm());
        let b = Faults::seeded(7, FaultConfig::storm());
        drive(&a, 500);
        drive(&b, 500);
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.trace_hash(), b.trace_hash());
        assert!(a.stats().injected > 0, "storm must inject");
    }

    #[test]
    fn different_seeds_diverge() {
        let a = Faults::seeded(1, FaultConfig::storm());
        let b = Faults::seeded(2, FaultConfig::storm());
        drive(&a, 500);
        drive(&b, 500);
        assert_ne!(a.trace_hash(), b.trace_hash());
    }

    #[test]
    fn zero_and_nonzero_seeds_are_distinct() {
        let a = Faults::seeded(0, FaultConfig::storm());
        let b = Faults::seeded(1, FaultConfig::storm());
        drive(&a, 100);
        drive(&b, 100);
        assert_ne!(a.trace_hash(), b.trace_hash());
    }

    #[test]
    fn torn_writes_keep_fewer_bytes_than_the_frame() {
        let faults = Faults::seeded(3, FaultConfig::store_storm());
        let mut torn = 0;
        for _ in 0..2000 {
            if let Decision::TornWrite { keep } = faults.decide(Site::StoreWrite, 200) {
                assert!(keep < 200, "torn write must be short: {keep}");
                torn += 1;
            }
        }
        assert!(torn > 100, "storm profile tears writes ({torn})");
    }

    #[test]
    fn stalls_respect_the_configured_bound() {
        let config = FaultConfig {
            stall_per_mille: 1000,
            stall_max_millis: 3,
            ..FaultConfig::default()
        };
        let faults = Faults::seeded(9, config);
        for _ in 0..200 {
            match faults.decide(Site::ConnRead, 0) {
                Decision::Stall { millis } => assert!((1..=3).contains(&millis)),
                other => panic!("stall-only profile produced {other}"),
            }
        }
    }

    #[test]
    fn probability_changes_do_not_shift_unrelated_sites() {
        // Turning one site's probability off must not change the
        // decisions other sites see (the stream position per call is
        // fixed). Compare EvalItem decisions with and without tears.
        let with = Faults::seeded(11, FaultConfig::storm());
        let without = Faults::seeded(
            11,
            FaultConfig {
                torn_write_per_mille: 0,
                ..FaultConfig::storm()
            },
        );
        // Identical call sequences, alternating the two sites.
        let mut with_items = Vec::new();
        let mut without_items = Vec::new();
        for _ in 0..300 {
            let _ = with.decide(Site::StoreWrite, 64);
            with_items.push(with.decide(Site::EvalItem, 0));
            let _ = without.decide(Site::StoreWrite, 64);
            without_items.push(without.decide(Site::EvalItem, 0));
        }
        assert_eq!(with_items, without_items);
    }

    #[test]
    fn router_storm_drops_shards_and_stalls_writes_within_bounds() {
        let faults = Faults::seeded(17, FaultConfig::router_storm());
        let (mut drops, mut stalls) = (0, 0);
        for i in 0..2000 {
            match faults.decide(Site::ShardDrop, i % 4) {
                Decision::DropConn => drops += 1,
                Decision::Pass => {}
                other => panic!("shard_drop produced {other}"),
            }
            match faults.decide(Site::RouterWrite, 128) {
                Decision::Stall { millis } => {
                    assert!((1..=3).contains(&millis));
                    stalls += 1;
                }
                Decision::Pass => {}
                other => panic!("router_write produced {other}"),
            }
        }
        assert!(drops > 100, "router storm must drop shard links ({drops})");
        assert!(stalls > 50, "router storm must stall writes ({stalls})");
    }

    #[test]
    fn session_storm_fails_steps_without_other_sites() {
        let faults = Faults::seeded(19, FaultConfig::session_storm());
        let mut failed = 0;
        for _ in 0..1000 {
            match faults.decide(Site::SessionStep, 0) {
                Decision::FailItem => failed += 1,
                Decision::Pass => {}
                other => panic!("session_step produced {other}"),
            }
            assert_eq!(faults.decide(Site::StoreWrite, 64), Decision::Pass);
        }
        assert!(failed > 100, "session storm must fail steps ({failed})");
    }

    #[test]
    fn trace_events_format_stably() {
        let mut plan = FaultPlan::new(5, FaultConfig::default());
        let d = plan.decide(Site::ConnWrite, 0);
        assert_eq!(d, Decision::Pass);
        let trace = plan.trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.first().map(TraceEvent::to_string).as_deref(), {
            Some("0 conn_write pass")
        });
    }

    #[test]
    fn clones_share_one_schedule() {
        let a = Faults::seeded(13, FaultConfig::storm());
        let b = a.clone();
        let _ = a.decide(Site::StoreWrite, 64);
        let _ = b.decide(Site::ConnRead, 0);
        assert_eq!(a.stats().decisions, 2);
        assert_eq!(a.trace(), b.trace());
    }
}
