//! **oa-fault** — a seeded, deterministic fault-injection layer for the
//! INTO-OA serving stack.
//!
//! The store (`oa-store`) and the evaluation service (`oa-serve`) promise
//! crash safety and byte-identical recovery, and the router (`oa-router`)
//! promises failover around dead shards; this crate makes those
//! promises *testable* by injecting the failures they claim to survive —
//! torn writes, failed fsyncs, dropped and stalled connections, worker
//! panics, per-item evaluation errors, dropped shard links, stalled
//! router writes — from a seeded schedule that is a pure function of the
//! seed and the call sequence. No wall clock, no global state, no
//! environment reads.
//!
//! # Determinism contract
//!
//! A [`FaultPlan`] owns an xorshift64\*-seeded stream. Every
//! [`Faults::decide`] call consumes a deterministic number of draws, so
//! *same seed + same sequence of `decide` calls ⇒ same decisions*, and
//! the recorded trace (and its [`Faults::trace_hash`]) is replayable.
//! Under concurrency the interleaving of `decide` calls across threads is
//! the caller's responsibility: the chaos harness serializes requests so
//! the global call sequence — and therefore the whole fault schedule — is
//! reproducible from the seed alone.
//!
//! # Zero cost when disabled
//!
//! The [`Faults`] handle threaded through the hot paths is a newtype over
//! `Option<Arc<..>>`. [`Faults::none`] (the default) short-circuits every
//! [`Faults::decide`] to [`Decision::Pass`] on a single `None` check —
//! no lock, no rng, no allocation — so production builds pay one
//! predictable branch per injection point.
//!
//! # Example
//!
//! ```
//! use oa_fault::{Decision, FaultConfig, Faults, Site};
//!
//! let faults = Faults::seeded(42, FaultConfig::store_storm());
//! let mut injected = 0;
//! for _ in 0..100 {
//!     if faults.decide(Site::StoreWrite, 64) != Decision::Pass {
//!         injected += 1;
//!     }
//! }
//! assert!(injected > 0, "a storm profile injects");
//! // Replaying the same seed reproduces the same schedule exactly.
//! let replay = Faults::seeded(42, FaultConfig::store_storm());
//! for _ in 0..100 {
//!     let _ = replay.decide(Site::StoreWrite, 64);
//! }
//! assert_eq!(faults.trace_hash(), replay.trace_hash());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod retry;

pub use plan::{Decision, FaultConfig, FaultPlan, FaultStats, Faults, Site, TraceEvent};
pub use retry::RetryPolicy;
