//! `gm/Id`-based mapping of behavior-level op-amps to transistor level
//! (\[16\]'s method, Section II-C / IV-D of the INTO-OA paper).
//!
//! The amplifier stage connected to `vin` becomes a differential pair with
//! a current-mirror load; every other transconductor becomes a
//! common-source amplifier with a current-source load. Device sizes follow
//! from the behavioral `gm` values through the `gm/Id` tables, and the
//! transistor-level small-signal model adds exactly the non-idealities the
//! paper reports as the cause of the FoM drop in Table V:
//!
//! * finite load-device output conductance (≈ halves every stage gain),
//! * gate-source capacitance `C_gs = gm/(2π·f_T)` loading each input,
//! * gate-drain overlap capacitance bridging input and output of every
//!   stage (parasitic Miller feedback, RHP-zero effects),
//! * tail-current and bias-branch power overheads.

use oa_circuit::{
    DeviceValues, GmComposite, GmDirection, Netlist, NetlistBuilder, NodeId, PassiveKind,
    SubcircuitType, Topology, VariableEdge, STAGE_SIGNS,
};
use oa_sim::{measure, AcOptions, OpAmpPerformance};

use crate::error::XtorError;
use crate::tables::GmIdTables;

/// Options controlling the transistor mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XtorOptions {
    /// Bias point for every device (the tables' sweet spot ≈ 15/V).
    pub gm_over_id: f64,
    /// The lookup tables.
    pub tables: GmIdTables,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Multiplicative power overhead for bias branches and mirrors.
    pub bias_overhead: f64,
    /// Gate-drain (overlap) capacitance as a fraction of `C_gs`.
    pub cgd_ratio: f64,
    /// Junction/load capacitance at a stage output as a fraction of `C_gs`.
    pub cj_ratio: f64,
    /// Fixed wiring/junction capacitance at every stage output in farads.
    /// The behavioral abstraction books a smaller floor; the physical
    /// layout's routing and drain junctions add more.
    pub c_wire: f64,
}

impl Default for XtorOptions {
    fn default() -> Self {
        XtorOptions {
            gm_over_id: 15.0,
            tables: GmIdTables,
            vdd: 1.8,
            bias_overhead: 1.15,
            cgd_ratio: 0.3,
            cj_ratio: 1.0,
            c_wire: 120e-15,
        }
    }
}

/// One mapped transistor (or matched pair) with its bias and geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct TransistorDevice {
    /// Human-readable role, e.g. `"M1 diff pair (stage 1)"`.
    pub name: String,
    /// Signal transconductance in siemens.
    pub gm_s: f64,
    /// Drain current in amps (per branch).
    pub id_a: f64,
    /// Aspect ratio `W/L`.
    pub w_over_l: f64,
}

/// A transistor-level realization of a behavior-level design.
#[derive(Debug, Clone, PartialEq)]
pub struct TransistorMapping {
    /// The transistor-grade small-signal netlist.
    pub netlist: Netlist,
    /// Every sized device.
    pub devices: Vec<TransistorDevice>,
}

struct Mapper<'a> {
    opts: &'a XtorOptions,
    builder: NetlistBuilder,
    devices: Vec<TransistorDevice>,
}

impl<'a> Mapper<'a> {
    /// Adds one transconductor stage realized as a transistor amplifier.
    ///
    /// `differential` selects the input diff-pair realization (doubled
    /// bias current, mirror load); otherwise a common-source stage with a
    /// current-source load is used.
    fn add_stage(
        &mut self,
        name: &str,
        ctrl: NodeId,
        out: NodeId,
        signed_gm: f64,
        differential: bool,
    ) {
        let gm = signed_gm.abs();
        let t = &self.opts.tables;
        let gmid = self.opts.gm_over_id;
        let id = gm / gmid;
        let cgs = t.cgs(gmid, gm);
        let gds_amp = gm / t.intrinsic_gain(gmid);
        // Load device biased at the same point carries the same current.
        let gds_load = gds_amp;

        // Signal path, band-limited by the *stage* bandwidth: internal
        // mirror poles, cascode nodes and source degeneration put the
        // usable amplifier-cell bandwidth around fT/150 — slightly below
        // the behavioral abstraction's 20 MHz cells, which is precisely the
        // "inaccurate estimation of parasitics at the behavior level" that
        // Table V attributes the transistor-level FoM drop to.
        self.builder
            .inject_gm_banded(ctrl, out, signed_gm, t.ft_hz(gmid) / 150.0);
        // Finite output resistance of amplifier + load devices.
        self.builder
            .resistor(out, NodeId::GROUND, 1.0 / (gds_amp + gds_load));
        // Input loading and parasitic Miller feedback.
        self.builder.capacitor(ctrl, NodeId::GROUND, cgs);
        self.builder.capacitor(ctrl, out, self.opts.cgd_ratio * cgs);
        // Output junction + load-device capacitance.
        let c_out =
            self.opts.c_wire + self.opts.cj_ratio * cgs * if differential { 2.0 } else { 1.5 };
        self.builder.capacitor(out, NodeId::GROUND, c_out);

        // Power: a diff pair burns twice the branch current in the tail.
        let branches = if differential { 2.0 } else { 1.0 };
        self.builder
            .add_static_power(self.opts.vdd * id * branches * self.opts.bias_overhead);

        self.devices.push(TransistorDevice {
            name: name.to_owned(),
            gm_s: gm,
            id_a: id,
            w_over_l: t.w_over_l(gmid, id),
        });
    }
}

fn require(name: &str, v: Option<f64>) -> Result<f64, XtorError> {
    match v {
        Some(x) if x.is_finite() && x > 0.0 => Ok(x),
        other => Err(XtorError::MissingDevice {
            name: name.to_owned(),
            value: other,
        }),
    }
}

/// Maps a sized behavior-level topology to a transistor-level netlist.
///
/// # Errors
///
/// Returns [`XtorError::MissingDevice`] when `values` lacks a device the
/// topology requires.
///
/// # Examples
///
/// ```
/// use oa_circuit::{ParamSpace, Topology};
/// use oa_xtor::{map_topology, XtorOptions};
///
/// # fn main() -> Result<(), oa_xtor::XtorError> {
/// let t = Topology::bare_cascade();
/// let space = ParamSpace::for_topology(&t);
/// let mapping = map_topology(&t, &space.nominal(), &XtorOptions::default(), 10e-12)?;
/// assert_eq!(mapping.devices.len(), 3); // one per main stage
/// # Ok(())
/// # }
/// ```
pub fn map_topology(
    topology: &Topology,
    values: &DeviceValues,
    opts: &XtorOptions,
    cl_farads: f64,
) -> Result<TransistorMapping, XtorError> {
    let mut builder = NetlistBuilder::new();
    let vin = builder.add_node("vin");
    let v1 = builder.add_node("v1");
    let v2 = builder.add_node("v2");
    let vout = builder.add_node("vout");
    let node_of = |n: oa_circuit::CircuitNode| match n {
        oa_circuit::CircuitNode::Vin => vin,
        oa_circuit::CircuitNode::V1 => v1,
        oa_circuit::CircuitNode::V2 => v2,
        oa_circuit::CircuitNode::Gnd => NodeId::GROUND,
        oa_circuit::CircuitNode::Vout => vout,
    };
    let mut mapper = Mapper {
        opts,
        builder,
        devices: Vec::new(),
    };

    // Main stages: stage 1 is the differential input pair.
    let stage_io = [(vin, v1), (v1, v2), (v2, vout)];
    for (i, ((ctrl, out), sign)) in stage_io.iter().zip(STAGE_SIGNS).enumerate() {
        let gm = require(&format!("gm{}", i + 1), Some(values.stage_gm[i]))?;
        let name = if i == 0 {
            "M1 diff pair (stage 1)".to_owned()
        } else {
            format!("M{} common source (stage {})", i + 1, i + 1)
        };
        mapper.add_stage(&name, *ctrl, *out, sign * gm, i == 0);
    }

    // Variable subcircuits.
    for edge in VariableEdge::ALL {
        let ty = topology.type_on(edge);
        let ev = values.edges[edge.index()];
        let (first, second) = edge.endpoints();
        let (na, nb) = (node_of(first), node_of(second));
        match ty {
            SubcircuitType::NoConn => {}
            SubcircuitType::Passive(p) => match p {
                PassiveKind::R => {
                    mapper
                        .builder
                        .resistor(na, nb, require(&format!("R({edge})"), ev.r)?)
                }
                PassiveKind::C => {
                    mapper
                        .builder
                        .capacitor(na, nb, require(&format!("C({edge})"), ev.c)?)
                }
                PassiveKind::ParallelRc => {
                    mapper
                        .builder
                        .resistor(na, nb, require(&format!("R({edge})"), ev.r)?);
                    mapper
                        .builder
                        .capacitor(na, nb, require(&format!("C({edge})"), ev.c)?);
                }
                PassiveKind::SeriesRc => {
                    let mid = mapper.builder.add_node(format!("m_{edge}"));
                    mapper
                        .builder
                        .resistor(na, mid, require(&format!("R({edge})"), ev.r)?);
                    mapper
                        .builder
                        .capacitor(mid, nb, require(&format!("C({edge})"), ev.c)?);
                }
            },
            SubcircuitType::Gm {
                polarity,
                direction,
                composite,
            } => {
                let gm = require(&format!("gm({edge})"), ev.gm)?;
                let signed = polarity.sign() * gm;
                let (ctrl, out) = match direction {
                    GmDirection::Forward => (na, nb),
                    GmDirection::Reverse => (nb, na),
                };
                let name = format!("Mff {edge} ({})", ty.mnemonic());
                match composite {
                    GmComposite::Bare | GmComposite::ParallelR | GmComposite::ParallelC => {
                        mapper.add_stage(&name, ctrl, out, signed, false);
                        if composite == GmComposite::ParallelR {
                            mapper
                                .builder
                                .resistor(na, nb, require(&format!("R({edge})"), ev.r)?);
                        } else if composite == GmComposite::ParallelC {
                            mapper
                                .builder
                                .capacitor(na, nb, require(&format!("C({edge})"), ev.c)?);
                        }
                    }
                    GmComposite::SeriesR | GmComposite::SeriesC => {
                        let mid = mapper.builder.add_node(format!("m_{edge}"));
                        mapper.add_stage(&name, ctrl, mid, signed, false);
                        if composite == GmComposite::SeriesR {
                            mapper.builder.resistor(
                                mid,
                                out,
                                require(&format!("R({edge})"), ev.r)?,
                            );
                        } else {
                            mapper.builder.capacitor(
                                mid,
                                out,
                                require(&format!("C({edge})"), ev.c)?,
                            );
                        }
                    }
                }
            }
        }
    }

    mapper.builder.capacitor(vout, NodeId::GROUND, cl_farads);
    Ok(TransistorMapping {
        netlist: mapper.builder.build(vin, vout),
        devices: mapper.devices,
    })
}

/// Maps and measures a design at transistor level (the Table V pipeline).
///
/// # Errors
///
/// Propagates mapping and simulation errors.
pub fn transistor_performance(
    topology: &Topology,
    values: &DeviceValues,
    opts: &XtorOptions,
    cl_farads: f64,
    ac: &AcOptions,
) -> Result<(OpAmpPerformance, TransistorMapping), XtorError> {
    let mapping = map_topology(topology, values, opts, cl_farads)?;
    let m = measure(&mapping.netlist, ac)?;
    let (gbw_hz, pm_deg) = match m.unity {
        Some(u) => (u.freq_hz, u.phase_margin_deg),
        None => (0.0, -180.0),
    };
    let perf = OpAmpPerformance {
        gain_db: m.dc_gain_db,
        gbw_hz,
        pm_deg,
        power_w: mapping.netlist.static_power(),
    };
    Ok((perf, mapping))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_circuit::{elaborate, ParamSpace, Process};

    fn miller() -> (Topology, DeviceValues) {
        let t = Topology::bare_cascade()
            .with_type(
                VariableEdge::V1Vout,
                SubcircuitType::Passive(PassiveKind::C),
            )
            .unwrap();
        let space = ParamSpace::for_topology(&t);
        (t, space.decode(&[0.55, 0.5, 0.6, 0.8]).unwrap())
    }

    fn behavioral_perf(t: &Topology, v: &DeviceValues) -> OpAmpPerformance {
        let netlist = elaborate(t, v, &Process::default(), 10e-12).unwrap();
        let m = measure(&netlist, &AcOptions::default()).unwrap();
        let u = m.unity.unwrap();
        OpAmpPerformance {
            gain_db: m.dc_gain_db,
            gbw_hz: u.freq_hz,
            pm_deg: u.phase_margin_deg,
            power_w: netlist.static_power(),
        }
    }

    #[test]
    fn transistor_level_is_functional() {
        let (t, v) = miller();
        let (perf, mapping) = transistor_performance(
            &t,
            &v,
            &XtorOptions::default(),
            10e-12,
            &AcOptions::default(),
        )
        .unwrap();
        assert!(perf.gain_db > 60.0, "gain {}", perf.gain_db);
        assert!(perf.gbw_hz > 0.0);
        assert_eq!(mapping.devices.len(), 3);
    }

    #[test]
    fn transistor_level_burns_more_power_than_behavioral() {
        let (t, v) = miller();
        let behav = behavioral_perf(&t, &v);
        let (perf, _) = transistor_performance(
            &t,
            &v,
            &XtorOptions::default(),
            10e-12,
            &AcOptions::default(),
        )
        .unwrap();
        assert!(
            perf.power_w > behav.power_w,
            "tail + bias overheads must cost power: {} vs {}",
            perf.power_w,
            behav.power_w
        );
    }

    #[test]
    fn transistor_level_fom_drops_as_in_table5() {
        let (t, v) = miller();
        let behav = behavioral_perf(&t, &v);
        let (perf, _) = transistor_performance(
            &t,
            &v,
            &XtorOptions::default(),
            10e-12,
            &AcOptions::default(),
        )
        .unwrap();
        assert!(
            perf.fom(10e-12) < behav.fom(10e-12),
            "transistor FoM {} should drop below behavioral {}",
            perf.fom(10e-12),
            behav.fom(10e-12)
        );
    }

    #[test]
    fn devices_are_sized_from_tables() {
        let (t, v) = miller();
        let mapping = map_topology(&t, &v, &XtorOptions::default(), 10e-12).unwrap();
        for d in &mapping.devices {
            assert!(d.w_over_l > 0.0);
            assert!((d.id_a - d.gm_s / 15.0).abs() / d.id_a < 1e-9);
        }
    }

    #[test]
    fn feedforward_gm_becomes_extra_device() {
        let t = Topology::bare_cascade()
            .with_type(
                VariableEdge::VinVout,
                SubcircuitType::Gm {
                    polarity: oa_circuit::GmPolarity::Plus,
                    direction: GmDirection::Forward,
                    composite: GmComposite::Bare,
                },
            )
            .unwrap();
        let space = ParamSpace::for_topology(&t);
        let mapping = map_topology(&t, &space.nominal(), &XtorOptions::default(), 10e-12).unwrap();
        assert_eq!(mapping.devices.len(), 4);
        assert!(mapping.devices[3].name.contains("vin-vout"));
    }

    #[test]
    fn missing_values_are_reported() {
        let t = Topology::bare_cascade()
            .with_type(VariableEdge::V1Gnd, SubcircuitType::Passive(PassiveKind::R))
            .unwrap();
        let bare = ParamSpace::for_topology(&Topology::bare_cascade());
        let err = map_topology(&t, &bare.nominal(), &XtorOptions::default(), 10e-12).unwrap_err();
        assert!(matches!(err, XtorError::MissingDevice { .. }));
    }
}
