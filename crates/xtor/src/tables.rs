//! Synthetic `gm/Id` lookup tables for a 180 nm-class process.
//!
//! The paper maps behavioral stages to transistors with `gm/Id` lookup
//! tables extracted from a proprietary PDK. This module substitutes
//! physically-shaped synthetic tables built on the EKV weak/strong
//! inversion interpolation (DESIGN.md §2): transconductance efficiency,
//! transit frequency, intrinsic gain and current density are all smooth
//! functions of the inversion coefficient
//!
//! `IC`: `gm/Id = 1 / (n·U_T · (0.5 + √(0.25 + IC)))`.
//!
//! The shapes reproduce what matters for Table V: biasing deeper into weak
//! inversion (higher `gm/Id`) buys efficiency and gain but costs transit
//! frequency — i.e. parasitic capacitance per transconductance rises.

/// Thermal voltage at room temperature (V).
const UT: f64 = 0.0258;
/// Subthreshold slope factor.
const SLOPE_N: f64 = 1.3;
/// Peak transit frequency at strong inversion for the synthetic process.
const FT_MAX_HZ: f64 = 6e9;
/// Peak intrinsic gain (weak inversion) for the synthetic process.
const GAIN_MAX: f64 = 160.0;
/// Technology current `I0 = 2·n·µ·Cox·U_T²·(W/L)` per unit W/L (A).
const I0: f64 = 0.6e-6;

/// Synthetic `gm/Id` lookup tables.
///
/// # Examples
///
/// ```
/// use oa_xtor::GmIdTables;
///
/// let t = GmIdTables::default();
/// // Weak inversion is more efficient but slower.
/// assert!(t.ft_hz(22.0) < t.ft_hz(8.0));
/// assert!(t.intrinsic_gain(22.0) > t.intrinsic_gain(8.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GmIdTables;

impl GmIdTables {
    /// Maximum achievable `gm/Id` for the synthetic process (deep weak
    /// inversion limit `1/(n·U_T)` ≈ 29.8 /V).
    pub fn max_gm_over_id(&self) -> f64 {
        1.0 / (SLOPE_N * UT)
    }

    /// Inversion coefficient that realizes a target `gm/Id`.
    ///
    /// # Panics
    ///
    /// Panics if `gm_over_id` is not in `(0, max_gm_over_id)`.
    pub fn inversion_coefficient(&self, gm_over_id: f64) -> f64 {
        assert!(
            gm_over_id > 0.0 && gm_over_id < self.max_gm_over_id(),
            "gm/Id {gm_over_id} outside the achievable range"
        );
        // Invert gm/Id = 1/(n·UT·(0.5+sqrt(0.25+IC))).
        let s = 1.0 / (gm_over_id * SLOPE_N * UT) - 0.5;
        (s * s - 0.25).max(1e-9)
    }

    /// Transit frequency `f_T` at a bias point; strong inversion is fast,
    /// weak inversion slow (`f_T ∝ IC^(1/2)`-ish saturating shape).
    pub fn ft_hz(&self, gm_over_id: f64) -> f64 {
        let ic = self.inversion_coefficient(gm_over_id);
        FT_MAX_HZ * (ic / (ic + 8.0)).sqrt()
    }

    /// Intrinsic gain `gm/gds` at a bias point; weak inversion has the
    /// highest gain.
    pub fn intrinsic_gain(&self, gm_over_id: f64) -> f64 {
        let ic = self.inversion_coefficient(gm_over_id);
        // Gain degrades gently toward strong inversion.
        GAIN_MAX / (1.0 + 0.35 * ic.sqrt())
    }

    /// Drain current per unit `W/L` at a bias point (A); used to size the
    /// device width for a target current.
    pub fn current_density(&self, gm_over_id: f64) -> f64 {
        I0 * self.inversion_coefficient(gm_over_id)
    }

    /// Device `W/L` needed to carry `id` amps at the bias point.
    pub fn w_over_l(&self, gm_over_id: f64, id: f64) -> f64 {
        id / self.current_density(gm_over_id)
    }

    /// Gate-source capacitance of a transistor with transconductance `gm`
    /// at the bias point: `C_gs = gm / (2π·f_T)`.
    pub fn cgs(&self, gm_over_id: f64, gm: f64) -> f64 {
        gm / (2.0 * std::f64::consts::PI * self.ft_hz(gm_over_id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gm_over_id_roundtrips_through_ic() {
        let t = GmIdTables;
        for target in [5.0, 10.0, 15.0, 20.0, 25.0] {
            let ic = t.inversion_coefficient(target);
            let recovered = 1.0 / (SLOPE_N * UT * (0.5 + (0.25f64 + ic).sqrt()));
            assert!(
                (recovered - target).abs() / target < 1e-6,
                "{target} vs {recovered}"
            );
        }
    }

    #[test]
    fn weak_inversion_trades_speed_for_gain() {
        let t = GmIdTables;
        let mut prev_ft = f64::INFINITY;
        let mut prev_gain = 0.0;
        for gmid in [6.0, 10.0, 14.0, 18.0, 22.0, 26.0] {
            let ft = t.ft_hz(gmid);
            let gain = t.intrinsic_gain(gmid);
            assert!(ft < prev_ft, "fT must fall with gm/Id");
            assert!(gain > prev_gain, "gain must rise with gm/Id");
            prev_ft = ft;
            prev_gain = gain;
        }
    }

    #[test]
    fn cgs_scales_with_gm() {
        let t = GmIdTables;
        let c1 = t.cgs(15.0, 100e-6);
        let c2 = t.cgs(15.0, 200e-6);
        assert!((c2 - 2.0 * c1).abs() < 1e-20);
        assert!(c1 > 0.0 && c1 < 1e-9, "cgs = {c1}");
    }

    #[test]
    fn width_scales_linearly_with_current() {
        let t = GmIdTables;
        let w1 = t.w_over_l(12.0, 10e-6);
        let w2 = t.w_over_l(12.0, 20e-6);
        assert!((w2 - 2.0 * w1).abs() / w1 < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside the achievable range")]
    fn rejects_unachievable_bias() {
        let t = GmIdTables;
        let _ = t.inversion_coefficient(40.0);
    }
}
