//! Transistor-level substrate of the INTO-OA reproduction (Section IV-D).
//!
//! Behavior-level winners are validated at transistor level through the
//! `gm/Id`-based mapping of \[16\]: the input stage becomes a differential
//! pair with a current-mirror load, every other transconductor a
//! common-source amplifier, and device geometry follows from synthetic
//! `gm/Id` lookup tables (see DESIGN.md §2 for the PDK substitution).
//!
//! * [`GmIdTables`] — EKV-shaped efficiency/speed/gain/density tables.
//! * [`map_topology`] — behavioral design → transistor small-signal
//!   netlist + sized device list.
//! * [`transistor_performance`] — the Table V pipeline: map, simulate,
//!   measure.
//!
//! # Examples
//!
//! ```
//! use oa_circuit::{ParamSpace, Topology};
//! use oa_sim::AcOptions;
//! use oa_xtor::{transistor_performance, XtorOptions};
//!
//! # fn main() -> Result<(), oa_xtor::XtorError> {
//! let t = Topology::bare_cascade();
//! let space = ParamSpace::for_topology(&t);
//! let (perf, mapping) = transistor_performance(
//!     &t, &space.nominal(), &XtorOptions::default(), 10e-12, &AcOptions::default())?;
//! println!("{} devices, gain {:.1} dB", mapping.devices.len(), perf.gain_db);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod mapping;
mod tables;

pub use error::XtorError;
pub use mapping::{
    map_topology, transistor_performance, TransistorDevice, TransistorMapping, XtorOptions,
};
pub use tables::GmIdTables;
