//! Error type for the transistor-level mapping crate.

use oa_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors produced while mapping or measuring transistor-level designs.
#[derive(Debug, Clone, PartialEq)]
pub enum XtorError {
    /// A behavioral device value the topology requires is missing or
    /// invalid.
    MissingDevice {
        /// Parameter name.
        name: String,
        /// The offending value, if present.
        value: Option<f64>,
    },
    /// The transistor-level simulation failed.
    Sim(SimError),
}

impl fmt::Display for XtorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XtorError::MissingDevice { name, value } => match value {
                Some(v) => write!(f, "device parameter {name} has invalid value {v}"),
                None => write!(f, "device parameter {name} is missing"),
            },
            XtorError::Sim(e) => write!(f, "transistor-level simulation failed: {e}"),
        }
    }
}

impl Error for XtorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            XtorError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for XtorError {
    fn from(e: SimError) -> Self {
        XtorError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = XtorError::MissingDevice {
            name: "gm2".to_owned(),
            value: None,
        };
        assert!(e.to_string().contains("gm2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<XtorError>();
    }
}
