//! Crash-recovery property tests: a log truncated anywhere inside its
//! final record must reopen with every earlier record intact — the torn
//! record is the *only* casualty, at every possible tear point.

use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use oa_store::Store;
use proptest::prelude::*;

static CASE: AtomicU64 = AtomicU64::new(0);

fn temp_log(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir()
        .join(format!("oa_store_pt_{}_{tag}_{case}", std::process::id()))
        .join("log")
}

fn cleanup(path: &Path) {
    let _ = fs::remove_dir_all(path.parent().unwrap());
}

/// `(key, value)` pairs with distinct keys (a shared prefix byte keeps
/// keys adversarially similar) and arbitrary binary values.
fn arb_records() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    proptest::collection::vec(0u64..1_000_000, 2usize..10).prop_map(|seeds| {
        seeds
            .into_iter()
            .enumerate()
            .map(|(i, seed)| {
                let key = format!("k/{i}").into_bytes();
                // Value bytes derived from the seed, variable length 0..40,
                // including zeros and 0xFF runs.
                let len = (seed % 41) as usize;
                let value: Vec<u8> = (0..len)
                    .map(|j| (seed.wrapping_mul(j as u64 + 1) >> (j % 8)) as u8)
                    .collect();
                (key, value)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Writes N records, then for EVERY byte offset strictly inside the
    /// final record truncates the log there, reopens, and checks that the
    /// first N−1 records survive bit-exactly while the torn one is gone.
    #[test]
    fn truncation_inside_final_record_loses_only_that_record(records in arb_records()) {
        let path = temp_log("tail");
        let mut store = Store::open(&path).unwrap();
        let mut len_before_last = 0u64;
        for (i, (k, v)) in records.iter().enumerate() {
            if i == records.len() - 1 {
                len_before_last = fs::metadata(&path).unwrap().len();
            }
            store.put(k, v).unwrap();
        }
        let full_len = fs::metadata(&path).unwrap().len();
        drop(store);
        let pristine = fs::read(&path).unwrap();
        let survivors = &records[..records.len() - 1];
        let (torn_key, _) = records.last().unwrap();

        for cut in len_before_last..full_len {
            fs::write(&path, &pristine).unwrap();
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(cut).unwrap();
            drop(f);

            let reopened = Store::open(&path).unwrap();
            for (k, v) in survivors {
                prop_assert!(
                    reopened.get(k).as_deref() == Some(v.as_slice()),
                    "cut at {cut} of {full_len}: record {k:?} lost"
                );
            }
            prop_assert!(
                reopened.get(torn_key).is_none(),
                "cut at {cut}: torn record resurrected"
            );
            prop_assert_eq!(reopened.len(), survivors.len());
        }
        cleanup(&path);
    }

    /// Regression: a crash *during* compaction — modelled as a torn
    /// prefix of the compacted image left in the `.compact.tmp` file,
    /// rename never reached — must lose nothing. Reopening recovers a
    /// store whose contents, and whose subsequent fault-free compaction
    /// bytes, are identical to a run where the crash never happened.
    #[test]
    fn crash_during_compaction_is_invisible_after_recovery(
        records in arb_records(),
        tear_per_mille in 1u64..1000,
    ) {
        let path = temp_log("compact_crash");
        let mut store = Store::open(&path).unwrap();
        for (k, v) in &records {
            store.put(k, v).unwrap();
        }
        drop(store);
        let log_before = fs::read(&path).unwrap();

        // Plant the torn compaction image a crash would leave behind.
        let tmp = path.with_extension("compact.tmp");
        let tear_at = (log_before.len() as u64 * tear_per_mille / 1000) as usize;
        fs::write(&tmp, &log_before[..tear_at.min(log_before.len())]).unwrap();

        // Recovery: reopen, then compact fault-free.
        let mut recovered = Store::open(&path).unwrap();
        prop_assert!(!tmp.exists(), "stale compaction temp must be removed");
        prop_assert_eq!(recovered.len(), records.len());
        recovered.compact().unwrap();
        drop(recovered);
        let compacted_after_crash = fs::read(&path).unwrap();

        // Baseline: the same records, never crashed, compacted once.
        let base_path = temp_log("compact_base");
        let mut base = Store::open(&base_path).unwrap();
        for (k, v) in &records {
            base.put(k, v).unwrap();
        }
        base.compact().unwrap();
        drop(base);
        let baseline = fs::read(&base_path).unwrap();

        prop_assert!(
            compacted_after_crash == baseline,
            "compaction after a compaction crash must be byte-identical to fault-free"
        );
        cleanup(&path);
        cleanup(&base_path);
    }

    /// After recovery, the store accepts new appends and a reopen sees
    /// both the survivors and the new record (recovery truncates the
    /// torn bytes rather than leaving garbage mid-log).
    #[test]
    fn recovered_store_appends_cleanly(records in arb_records(), cut_back in 1u64..12) {
        let path = temp_log("append");
        let mut store = Store::open(&path).unwrap();
        for (k, v) in &records {
            store.put(k, v).unwrap();
        }
        let full_len = fs::metadata(&path).unwrap().len();
        drop(store);
        let cut = full_len.saturating_sub(cut_back.min(full_len - 1));
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let mut store = Store::open(&path).unwrap();
        let survivors = store.len();
        store.put(b"fresh", b"after recovery").unwrap();
        drop(store);

        let reopened = Store::open(&path).unwrap();
        prop_assert_eq!(reopened.len(), survivors + 1);
        let fresh = reopened.get(b"fresh");
        prop_assert_eq!(fresh.as_deref(), Some(&b"after recovery"[..]));
        prop_assert_eq!(reopened.stats().recovered_tail_bytes, 0);
        cleanup(&path);
    }
}
