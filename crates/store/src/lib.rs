//! **oa-store** — a content-addressed, crash-safe persistent result store.
//!
//! The serving layer (`oa-serve`) and the experiment harness (`oa-bench`)
//! both need the same thing: a durable map from an *evaluation key* (what
//! was asked) to the measured result (what came back), so identical
//! requests are never re-simulated — across threads, processes and
//! daemon restarts.
//!
//! The store is an **append-only record log** ([`Store`]):
//!
//! * every [`Store::put`] appends one checksummed record and fsyncs it
//!   before returning — a record is either fully on disk or not at all;
//! * opening scans the log, verifies each record's magic, bounds and
//!   FNV-1a checksum, and rebuilds the in-memory index; a torn final
//!   record (a crash mid-append) is **dropped, not fatal** — the file is
//!   truncated back to the last intact record and appends continue from
//!   there;
//! * keys are opaque bytes; the last record for a key wins, so updates
//!   are plain appends and [`Store::compact`] rewrites the log with only
//!   the live records (atomic rename).
//!
//! [`EvalKey`] is the canonical key for simulator results: topology code,
//! sizing-vector bits, spec id, process hash, and the per-request seed
//! for stochastic endpoints. The crate is std-only; its one dependency
//! is the workspace's `oa-fault` injection layer ([`Store::open_with_faults`]
//! threads a seeded fault plan through appends and compactions — the
//! default [`Store::open`] handle is disabled and costs one branch).
//! Values are opaque bytes (callers serialize — `oa-serve` stores the
//! response JSON, `oa-bench` stores the TSV run summary).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eval;
mod log;

pub use eval::{EvalKey, EvalKind};
pub use log::{Store, StoreStats};

/// 64-bit FNV-1a hash — the store's checksum and the conventional way to
/// derive [`EvalKey::process_hash`] from process-constant bit patterns.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes a sequence of `f64`s by bit pattern (order-sensitive), for
/// process/option fingerprints. `NaN`s with different payloads hash
/// differently; `-0.0` and `0.0` hash differently — the fingerprint is
/// over representations, not values.
pub fn hash_f64s<I: IntoIterator<Item = f64>>(values: I) -> u64 {
    let mut bytes = Vec::new();
    for v in values {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn f64_hash_is_order_and_bit_sensitive() {
        assert_ne!(hash_f64s([1.0, 2.0]), hash_f64s([2.0, 1.0]));
        assert_ne!(hash_f64s([0.0]), hash_f64s([-0.0]));
        assert_eq!(hash_f64s([1.5, 2.5]), hash_f64s([1.5, 2.5]));
    }
}
