//! The append-only record log behind [`Store`].
//!
//! On-disk layout: a sequence of records, each
//!
//! ```text
//! magic     u32 LE   0x4F41_5245 ("OARE")
//! key_len   u32 LE
//! val_len   u32 LE
//! checksum  u64 LE   FNV-1a over key bytes ++ value bytes
//! key       key_len bytes
//! value     val_len bytes
//! ```
//!
//! All integers little-endian. Lengths are bounded (`MAX_FIELD_LEN`) so a
//! corrupt header cannot provoke a giant allocation. A record is valid
//! only if the whole frame is present *and* the checksum matches; the
//! scan stops at the first invalid record and truncates the file there,
//! which makes a torn tail (crash or `kill -9` mid-append) cost exactly
//! the record that was being written.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use oa_fault::{Decision, Faults, Site};

use crate::fnv1a64;

const MAGIC: u32 = 0x4F41_5245;
const HEADER_LEN: usize = 4 + 4 + 4 + 8;
/// Upper bound on key or value length; anything larger in a header is
/// treated as corruption (and `put` refuses to write it).
pub(crate) const MAX_FIELD_LEN: usize = 1 << 28;

/// Counters describing a store's contents and traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live (distinct-key) records in the index.
    pub live_records: u64,
    /// Records appended over this handle's lifetime plus records replayed
    /// at open — total log appends observed.
    pub appended_records: u64,
    /// Bytes the log file currently occupies.
    pub log_bytes: u64,
    /// Bytes of torn tail dropped at open (0 after a clean shutdown).
    pub recovered_tail_bytes: u64,
    /// `get` calls that found a record.
    pub hits: u64,
    /// `get` calls that found nothing.
    pub misses: u64,
}

/// A crash-safe persistent byte-keyed store over an append-only log.
///
/// Concurrency model: a `Store` is a single-writer handle — wrap it in a
/// `Mutex` to share between threads. Two *processes* must not append to
/// the same log concurrently (last-opener-wins corruption risk on the
/// shared tail); one daemon or one harness binary per log.
///
/// # Examples
///
/// ```
/// let dir = std::env::temp_dir().join(format!("oa_store_doc_{}", std::process::id()));
/// let path = dir.join("results.log");
/// let mut store = oa_store::Store::open(&path).unwrap();
/// store.put(b"key", b"value").unwrap();
/// assert_eq!(store.get(b"key").as_deref(), Some(&b"value"[..]));
/// drop(store);
/// // Reopening rebuilds the index from the log.
/// let store = oa_store::Store::open(&path).unwrap();
/// assert_eq!(store.get(b"key").as_deref(), Some(&b"value"[..]));
/// # drop(store);
/// # let _ = std::fs::remove_dir_all(&dir);
/// ```
#[derive(Debug)]
pub struct Store {
    path: PathBuf,
    file: File,
    index: BTreeMap<Vec<u8>, Vec<u8>>,
    log_bytes: u64,
    appended: u64,
    recovered_tail_bytes: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    faults: Faults,
    /// Set when a failed append may have left bytes past `log_bytes`
    /// (torn write, write error, or unsynced tail). The next append
    /// truncates back to the last durable record before writing, so a
    /// garbage tail can never poison later records.
    tail_dirty: bool,
}

/// Wraps an injected fault as the `io::Error` the instrumented
/// operation would have surfaced.
fn injected(detail: &str) -> io::Error {
    io::Error::other(format!("injected fault: {detail}"))
}

/// Parses one record starting at `buf[at..]`. Returns the key/value
/// slices and the offset one past the record, or `None` if the bytes at
/// `at` do not form a complete, checksum-valid record.
fn parse_record(buf: &[u8], at: usize) -> Option<(&[u8], &[u8], usize)> {
    let header = buf.get(at..at + HEADER_LEN)?;
    // lint: allow(panic, fixed-width subslice of the bounds-checked header)
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return None;
    }
    // lint: allow(panic, fixed-width subslice of the bounds-checked header)
    let key_len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
    // lint: allow(panic, fixed-width subslice of the bounds-checked header)
    let val_len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
    if key_len > MAX_FIELD_LEN || val_len > MAX_FIELD_LEN {
        return None;
    }
    // lint: allow(panic, fixed-width subslice of the bounds-checked header)
    let checksum = u64::from_le_bytes(header[12..20].try_into().unwrap());
    let body_start = at + HEADER_LEN;
    let body = buf.get(body_start..body_start + key_len + val_len)?;
    if fnv1a64(body) != checksum {
        return None;
    }
    let (key, val) = body.split_at(key_len);
    Some((key, val, body_start + key_len + val_len))
}

/// The temporary file a compaction writes before its atomic rename.
fn compact_tmp_path(path: &Path) -> PathBuf {
    path.with_extension("compact.tmp")
}

fn encode_record(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(HEADER_LEN + key.len() + value.len());
    rec.extend_from_slice(&MAGIC.to_le_bytes());
    rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
    rec.extend_from_slice(&(value.len() as u32).to_le_bytes());
    let mut body = Vec::with_capacity(key.len() + value.len());
    body.extend_from_slice(key);
    body.extend_from_slice(value);
    rec.extend_from_slice(&fnv1a64(&body).to_le_bytes());
    rec.extend_from_slice(&body);
    rec
}

impl Store {
    /// Opens (creating if absent) the log at `path`, replaying every
    /// intact record into the in-memory index.
    ///
    /// A torn or corrupt tail is dropped: the file is truncated back to
    /// the end of the last intact record so subsequent appends produce a
    /// clean log. Corruption *before* the tail also stops the scan there
    /// (everything after an unreadable record is unreachable), which is
    /// the conservative choice for a format whose only writer appends.
    ///
    /// # Errors
    ///
    /// I/O errors opening, reading or truncating the file.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Store> {
        Store::open_with_faults(path, Faults::none())
    }

    /// [`Store::open`] with a fault-injection handle threaded into every
    /// subsequent append and compaction. Production callers use
    /// [`Store::open`] (equivalently, a [`Faults::none`] handle, whose
    /// per-operation cost is a single `None` check); the chaos harness
    /// passes a seeded plan.
    ///
    /// # Errors
    ///
    /// I/O errors opening, reading or truncating the file.
    pub fn open_with_faults<P: AsRef<Path>>(path: P, faults: Faults) -> io::Result<Store> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        // A crash during a previous compaction can leave a stale
        // temporary image next to the log. It was never renamed into
        // place, so it holds no live data — drop it at open, exactly
        // like the torn tail below, or it leaks disk forever.
        let tmp_path = compact_tmp_path(&path);
        if tmp_path.exists() {
            fs::remove_file(&tmp_path)?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;

        let mut index = BTreeMap::new();
        let mut appended = 0u64;
        let mut offset = 0usize;
        while let Some((key, val, next)) = parse_record(&buf, offset) {
            index.insert(key.to_vec(), val.to_vec());
            appended += 1;
            offset = next;
        }
        let recovered_tail_bytes = (buf.len() - offset) as u64;
        if recovered_tail_bytes > 0 {
            file.set_len(offset as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(offset as u64))?;
        Ok(Store {
            path,
            file,
            index,
            log_bytes: offset as u64,
            appended,
            recovered_tail_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            faults,
            tail_dirty: false,
        })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Looks up a key. The returned value is the last one `put` for that
    /// key.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        match self.index.get(key) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Returns whether a key is present without counting a hit or miss.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.index.contains_key(key)
    }

    /// Appends a record and fsyncs it before returning: once `put`
    /// succeeds the record survives a crash. The converse also holds —
    /// a `put` that returns an error leaves **no trace**: any partially
    /// written bytes are rolled back before the next append, and a
    /// crash before that rollback loses them to the torn-tail scan at
    /// reopen. Callers may therefore retry failed appends blindly.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidInput` for keys/values over the format's
    /// length bound.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> io::Result<()> {
        if key.len() > MAX_FIELD_LEN || value.len() > MAX_FIELD_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "store key/value exceeds format length bound",
            ));
        }
        if self.tail_dirty {
            self.repair_tail()?;
        }
        let rec = encode_record(key, value);
        if let Decision::TornWrite { keep } = self.faults.decide(Site::StoreWrite, rec.len() as u64)
        {
            // Model a crash mid-append: the torn prefix reaches the
            // file (so reopening exercises torn-tail recovery), the
            // caller sees a failed put, and this handle self-heals
            // on its next append.
            // lint: allow(panic, Faults guarantees keep < rec.len() for TornWrite)
            let _ = self.file.write_all(&rec[..keep as usize]);
            let _ = self.file.sync_data();
            self.tail_dirty = true;
            return Err(injected("torn append"));
        }
        if let Err(e) = self.file.write_all(&rec) {
            // Unknown how much landed; truncate before the next append.
            self.tail_dirty = true;
            return Err(e);
        }
        let sync_result = match self.faults.decide(Site::StoreSync, 0) {
            Decision::FailSync => Err(injected("fsync after append")),
            _ => self.file.sync_data(),
        };
        if let Err(e) = sync_result {
            // The bytes are written but not durable. Reporting success
            // would break the put-implies-durable contract, so fail the
            // put and roll the record back *now* — unlike a torn write,
            // the unsynced record is complete, so the reopen-time scan
            // would resurrect it if it reached disk anyway. If the
            // rollback itself fails, the next append retries it, and a
            // crash before then leaves the one ambiguity real fsync
            // semantics always leave: a failed put that survived.
            self.tail_dirty = true;
            let _ = self.repair_tail();
            return Err(e);
        }
        self.log_bytes += rec.len() as u64;
        self.appended += 1;
        self.index.insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    /// Truncates the file back to the last durable record after a
    /// failed append. Keeps `tail_dirty` set if the truncation itself
    /// fails, so the repair is retried before any later append.
    fn repair_tail(&mut self) -> io::Result<()> {
        self.file.set_len(self.log_bytes)?;
        self.file.seek(SeekFrom::Start(self.log_bytes))?;
        self.file.sync_data()?;
        self.tail_dirty = false;
        Ok(())
    }

    /// Number of live (distinct-key) records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Iterates live records in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.index.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            live_records: self.index.len() as u64,
            appended_records: self.appended,
            log_bytes: self.log_bytes,
            recovered_tail_bytes: self.recovered_tail_bytes,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Rewrites the log with only the live records (in key order, so the
    /// result is deterministic), via a temp file + fsync + atomic rename.
    /// A crash during compaction leaves either the old or the new log —
    /// never a mix — plus possibly a stale `.compact.tmp`, which the
    /// next [`Store::open`] removes.
    ///
    /// # Errors
    ///
    /// I/O errors; the original log is untouched on failure.
    pub fn compact(&mut self) -> io::Result<()> {
        if self.tail_dirty {
            self.repair_tail()?;
        }
        let tmp_path = compact_tmp_path(&self.path);
        let mut image = Vec::new();
        for (key, value) in &self.index {
            image.extend_from_slice(&encode_record(key, value));
        }
        let bytes = image.len() as u64;
        if let Decision::TornWrite { keep } = self.faults.decide(Site::StoreCompact, bytes) {
            // Model a crash mid-rewrite: a torn image lands in the temp
            // file, the rename never happens, and the stale temp is
            // left behind for reopen-time cleanup. The original log is
            // untouched, so the store stays fully usable.
            let mut tmp = File::create(&tmp_path)?;
            let _ = tmp.write_all(&image[..keep as usize]);
            let _ = tmp.sync_data();
            return Err(injected("compaction crashed mid-rewrite"));
        }
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(&image)?;
        tmp.sync_data()?;
        drop(tmp);
        fs::rename(&tmp_path, &self.path)?;
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        self.log_bytes = bytes;
        self.appended = self.index.len() as u64;
        self.recovered_tail_bytes = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(tag: &str) -> PathBuf {
        std::env::temp_dir()
            .join(format!("oa_store_{}_{}", tag, std::process::id()))
            .join("log")
    }

    fn cleanup(path: &Path) {
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn put_get_reopen_roundtrip() {
        let path = temp_log("roundtrip");
        let mut s = Store::open(&path).unwrap();
        s.put(b"a", b"1").unwrap();
        s.put(b"b", &[0u8, 255, 7]).unwrap();
        s.put(b"a", b"2").unwrap(); // update: last write wins
        assert_eq!(s.get(b"a").as_deref(), Some(&b"2"[..]));
        assert_eq!(s.len(), 2);
        drop(s);

        let s = Store::open(&path).unwrap();
        assert_eq!(s.get(b"a").as_deref(), Some(&b"2"[..]));
        assert_eq!(s.get(b"b").as_deref(), Some(&[0u8, 255, 7][..]));
        assert_eq!(s.stats().appended_records, 3);
        assert_eq!(s.stats().recovered_tail_bytes, 0);
        cleanup(&path);
    }

    #[test]
    fn torn_tail_is_dropped_and_store_stays_writable() {
        let path = temp_log("torn");
        let mut s = Store::open(&path).unwrap();
        s.put(b"keep", b"value").unwrap();
        s.put(b"torn", b"never lands").unwrap();
        let full = fs::metadata(&path).unwrap().len();
        drop(s);
        // Simulate a crash mid-append: chop 3 bytes off the final record.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);

        let mut s = Store::open(&path).unwrap();
        assert_eq!(s.get(b"keep").as_deref(), Some(&b"value"[..]));
        assert_eq!(s.get(b"torn"), None);
        assert!(s.stats().recovered_tail_bytes > 0);
        // The truncated tail must not poison later appends.
        s.put(b"after", b"crash").unwrap();
        drop(s);
        let s = Store::open(&path).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(b"after").as_deref(), Some(&b"crash"[..]));
        assert_eq!(s.stats().recovered_tail_bytes, 0);
        cleanup(&path);
    }

    #[test]
    fn bitflip_in_value_invalidates_record() {
        let path = temp_log("bitflip");
        let mut s = Store::open(&path).unwrap();
        s.put(b"k", b"payload-payload").unwrap();
        drop(s);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let s = Store::open(&path).unwrap();
        assert_eq!(s.get(b"k"), None, "corrupt record must not resurrect");
        cleanup(&path);
    }

    #[test]
    fn compact_keeps_only_live_records() {
        let path = temp_log("compact");
        let mut s = Store::open(&path).unwrap();
        for round in 0..5u8 {
            for k in 0..10u8 {
                s.put(&[k], &[round, k]).unwrap();
            }
        }
        let before = s.stats().log_bytes;
        s.compact().unwrap();
        let after = s.stats().log_bytes;
        assert!(after < before, "{after} !< {before}");
        assert_eq!(s.len(), 10);
        // Still correct after reopen and further appends.
        s.put(&[99], b"post-compact").unwrap();
        drop(s);
        let s = Store::open(&path).unwrap();
        assert_eq!(s.len(), 11);
        for k in 0..10u8 {
            assert_eq!(s.get(&[k]).as_deref(), Some(&[4u8, k][..]));
        }
        cleanup(&path);
    }

    #[test]
    fn empty_and_garbage_files_open_empty() {
        let path = temp_log("garbage");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, b"this is not a store log at all").unwrap();
        let s = Store::open(&path).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.stats().recovered_tail_bytes, 30);
        cleanup(&path);
    }

    #[test]
    fn oversized_fields_are_rejected() {
        let path = temp_log("oversize");
        let mut s = Store::open(&path).unwrap();
        // A header claiming a giant length must be rejected on write; the
        // read side bound is exercised by the recovery proptest.
        let err = s.put(b"k", &vec![0u8; MAX_FIELD_LEN + 1]);
        assert!(err.is_err());
        cleanup(&path);
    }

    #[test]
    fn stale_compaction_tmp_is_removed_at_open() {
        let path = temp_log("staletmp");
        let mut s = Store::open(&path).unwrap();
        s.put(b"live", b"record").unwrap();
        drop(s);
        // A crash between writing the temp image and the rename leaves
        // this file behind; it holds no live data.
        let tmp = compact_tmp_path(&path);
        fs::write(&tmp, b"half-written compaction image").unwrap();
        let before = fs::read(&path).unwrap();

        let s = Store::open(&path).unwrap();
        assert!(!tmp.exists(), "stale temp must be cleaned up");
        assert_eq!(s.get(b"live").as_deref(), Some(&b"record"[..]));
        drop(s);
        assert_eq!(fs::read(&path).unwrap(), before, "log must be untouched");
        cleanup(&path);
    }

    #[test]
    fn injected_torn_append_fails_then_self_heals() {
        use oa_fault::FaultConfig;
        let path = temp_log("inj_torn");
        let config = FaultConfig {
            torn_write_per_mille: 1000,
            ..FaultConfig::default()
        };
        let mut s = Store::open_with_faults(&path, Faults::seeded(1, config)).unwrap();
        s.put(b"base", b"durable").unwrap_err(); // every write tears
        drop(s);
        // Crash path: reopening drops the torn prefix.
        let s = Store::open(&path).unwrap();
        assert!(s.is_empty());
        assert!(s.stats().recovered_tail_bytes > 0 || s.stats().log_bytes == 0);
        drop(s);

        // Continued-use path: the same handle heals on the next append.
        let mut s = Store::open_with_faults(
            &path,
            Faults::seeded(
                2,
                FaultConfig {
                    torn_write_per_mille: 500,
                    ..FaultConfig::default()
                },
            ),
        )
        .unwrap();
        let mut ok = 0;
        for i in 0..40u8 {
            if s.put(&[i], &[i, i]).is_ok() {
                ok += 1;
            }
        }
        assert!(ok > 0, "half-rate tearing must let some puts through");
        assert_eq!(s.len(), ok);
        drop(s);
        // Reopen: only successful puts survive. (A torn *final* put is
        // healed by the reopen scan instead of the next-append repair.)
        let s = Store::open(&path).unwrap();
        assert_eq!(s.len(), ok, "failed puts must leave no trace");
        cleanup(&path);
    }

    #[test]
    fn injected_sync_failure_rolls_back_the_record() {
        use oa_fault::FaultConfig;
        let path = temp_log("inj_sync");
        let config = FaultConfig {
            fail_sync_per_mille: 1000,
            ..FaultConfig::default()
        };
        let mut s = Store::open_with_faults(&path, Faults::seeded(3, config)).unwrap();
        s.put(b"k", b"v").unwrap_err();
        assert_eq!(s.get(b"k"), None, "failed put must not be visible");
        drop(s);
        let s = Store::open(&path).unwrap();
        assert_eq!(s.get(b"k"), None, "unsynced record must not survive");
        cleanup(&path);
    }

    #[test]
    fn injected_compaction_crash_preserves_the_log_byte_identically() {
        use oa_fault::FaultConfig;
        let path = temp_log("inj_compact");
        let mut s = Store::open(&path).unwrap();
        for round in 0..3u8 {
            for k in 0..8u8 {
                s.put(&[k], &[round, k]).unwrap();
            }
        }
        drop(s);
        let before = fs::read(&path).unwrap();

        let config = FaultConfig {
            compact_tear_per_mille: 1000,
            ..FaultConfig::default()
        };
        let mut s = Store::open_with_faults(&path, Faults::seeded(4, config)).unwrap();
        s.compact().unwrap_err();
        // The crash left a torn temp image but the log itself is whole.
        assert!(compact_tmp_path(&path).exists());
        assert_eq!(s.len(), 8, "store stays fully usable after the crash");
        drop(s);
        assert_eq!(fs::read(&path).unwrap(), before, "log must be untouched");

        // Recovery: reopen cleans the temp; a fault-free compaction then
        // produces the canonical image.
        let mut s = Store::open(&path).unwrap();
        assert!(!compact_tmp_path(&path).exists());
        s.compact().unwrap();
        assert_eq!(s.len(), 8);
        for k in 0..8u8 {
            assert_eq!(s.get(&[k]).as_deref(), Some(&[2u8, k][..]));
        }
        cleanup(&path);
    }

    #[test]
    fn hit_miss_counters_track_gets() {
        let path = temp_log("counters");
        let mut s = Store::open(&path).unwrap();
        s.put(b"k", b"v").unwrap();
        let _ = s.get(b"k");
        let _ = s.get(b"k");
        let _ = s.get(b"absent");
        let st = s.stats();
        assert_eq!((st.hits, st.misses), (2, 1));
        cleanup(&path);
    }
}
