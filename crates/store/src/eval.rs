//! Canonical evaluation keys.
//!
//! An evaluation is identified by *what was asked*: the topology's
//! canonical code, the exact sizing-vector bit pattern, the spec, the
//! process fingerprint, and — for stochastic endpoints like sizing BO —
//! the request seed. Two requests with equal keys are guaranteed equal
//! answers by the determinism contract (DESIGN.md §7), which is what
//! makes serving from the store sound.

/// The kind of evaluation a key describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvalKind {
    /// A single simulation of a fixed sized design (`x` is the
    /// normalized sizing vector). Deterministic; the seed field is 0.
    Eval,
    /// A sizing-BO run for a topology (`x_bits` carries the budget
    /// words); depends on the request seed.
    SizeOpt,
}

impl EvalKind {
    fn tag(self) -> u8 {
        match self {
            EvalKind::Eval => 0,
            EvalKind::SizeOpt => 1,
        }
    }
}

/// A content-addressed evaluation key.
///
/// The byte encoding is canonical (length-prefixed, little-endian, no
/// padding), so equal keys encode to equal bytes and distinct keys to
/// distinct bytes — the store needs nothing beyond byte equality.
///
/// # Examples
///
/// ```
/// use oa_store::{EvalKey, EvalKind};
///
/// let key = EvalKey {
///     kind: EvalKind::Eval,
///     topology_code: 1234,
///     x_bits: vec![0.5f64.to_bits(), 0.25f64.to_bits()],
///     spec_id: "S-1".to_owned(),
///     process_hash: 0xDEAD_BEEF,
///     seed: 0,
/// };
/// let bytes = key.encode();
/// assert_eq!(bytes, key.encode()); // canonical
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EvalKey {
    /// What kind of evaluation this is.
    pub kind: EvalKind,
    /// Canonical topology code (the design-space index).
    pub topology_code: u64,
    /// Exact bit patterns of the request's continuous inputs — the
    /// normalized sizing vector for [`EvalKind::Eval`], budget words for
    /// [`EvalKind::SizeOpt`]. Bit-for-bit: `0.1 + 0.2` and `0.3` are
    /// different keys, as they are different simulations.
    pub x_bits: Vec<u64>,
    /// Spec identifier (e.g. `"S-1"`).
    pub spec_id: String,
    /// Fingerprint of the process constants and simulator options (see
    /// [`crate::hash_f64s`]); results under different processes never
    /// collide.
    pub process_hash: u64,
    /// Request seed for stochastic endpoints; 0 for pure evaluation.
    pub seed: u64,
}

impl EvalKey {
    /// Canonical byte encoding.
    pub fn encode(&self) -> Vec<u8> {
        let spec = self.spec_id.as_bytes();
        let mut out = Vec::with_capacity(1 + 8 * (4 + self.x_bits.len()) + 4 + spec.len());
        out.push(self.kind.tag());
        out.extend_from_slice(&self.topology_code.to_le_bytes());
        out.extend_from_slice(&(self.x_bits.len() as u32).to_le_bytes());
        for &b in &self.x_bits {
            out.extend_from_slice(&b.to_le_bytes());
        }
        out.extend_from_slice(&(spec.len() as u32).to_le_bytes());
        out.extend_from_slice(spec);
        out.extend_from_slice(&self.process_hash.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out
    }

    /// Decodes a canonical key, the exact inverse of [`EvalKey::encode`].
    /// Returns `None` for anything that is not a complete well-formed
    /// key (wrong tag, truncated fields, trailing bytes, non-UTF-8
    /// spec) — store scanners use this to skip foreign records safely.
    pub fn decode(bytes: &[u8]) -> Option<EvalKey> {
        let mut cursor = bytes;
        let take = |cursor: &mut &[u8], n: usize| -> Option<Vec<u8>> {
            if cursor.len() < n {
                return None;
            }
            let (head, tail) = cursor.split_at(n);
            *cursor = tail;
            Some(head.to_vec())
        };
        let u64_at = |cursor: &mut &[u8]| -> Option<u64> {
            take(cursor, 8).map(|b| u64::from_le_bytes(b.try_into().unwrap_or([0; 8])))
        };
        let u32_at = |cursor: &mut &[u8]| -> Option<u32> {
            take(cursor, 4).map(|b| u32::from_le_bytes(b.try_into().unwrap_or([0; 4])))
        };
        let kind = match *cursor.first()? {
            0 => EvalKind::Eval,
            1 => EvalKind::SizeOpt,
            _ => return None,
        };
        cursor = cursor.get(1..)?;
        let topology_code = u64_at(&mut cursor)?;
        let n_bits = u32_at(&mut cursor)? as usize;
        // A length prefix larger than the remaining bytes is corrupt.
        if cursor.len() < n_bits.checked_mul(8)? {
            return None;
        }
        let mut x_bits = Vec::with_capacity(n_bits);
        for _ in 0..n_bits {
            x_bits.push(u64_at(&mut cursor)?);
        }
        let spec_len = u32_at(&mut cursor)? as usize;
        let spec_id = String::from_utf8(take(&mut cursor, spec_len)?).ok()?;
        let process_hash = u64_at(&mut cursor)?;
        let seed = u64_at(&mut cursor)?;
        if !cursor.is_empty() {
            return None;
        }
        Some(EvalKey {
            kind,
            topology_code,
            x_bits,
            spec_id,
            process_hash,
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> EvalKey {
        EvalKey {
            kind: EvalKind::Eval,
            topology_code: 42,
            x_bits: vec![0.5f64.to_bits(), 0.75f64.to_bits()],
            spec_id: "S-3".to_owned(),
            process_hash: 7,
            seed: 0,
        }
    }

    #[test]
    fn every_field_discriminates() {
        let k = base();
        let variants = [
            EvalKey {
                kind: EvalKind::SizeOpt,
                ..base()
            },
            EvalKey {
                topology_code: 43,
                ..base()
            },
            EvalKey {
                x_bits: vec![0.5f64.to_bits()],
                ..base()
            },
            EvalKey {
                x_bits: vec![0.5f64.to_bits(), (-0.75f64).to_bits()],
                ..base()
            },
            EvalKey {
                spec_id: "S-4".to_owned(),
                ..base()
            },
            EvalKey {
                process_hash: 8,
                ..base()
            },
            EvalKey { seed: 1, ..base() },
        ];
        for v in variants {
            assert_ne!(v.encode(), k.encode(), "{v:?} must not collide");
        }
        assert_eq!(base().encode(), k.encode());
    }

    #[test]
    fn decode_roundtrips_and_rejects_corruption() {
        for key in [
            base(),
            EvalKey {
                kind: EvalKind::SizeOpt,
                x_bits: vec![4, 8],
                seed: 7,
                ..base()
            },
            EvalKey {
                x_bits: vec![],
                spec_id: String::new(),
                ..base()
            },
        ] {
            let bytes = key.encode();
            assert_eq!(EvalKey::decode(&bytes), Some(key));
        }
        let good = base().encode();
        assert_eq!(EvalKey::decode(&[]), None, "empty");
        assert_eq!(EvalKey::decode(&good[..good.len() - 1]), None, "truncated");
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(EvalKey::decode(&trailing), None, "trailing bytes");
        let mut bad_tag = good.clone();
        bad_tag[0] = 9;
        assert_eq!(EvalKey::decode(&bad_tag), None, "unknown tag");
        let mut huge_len = good;
        // Corrupt the x_bits length prefix (offset 9..13) to a value far
        // beyond the buffer; decode must fail instead of allocating.
        huge_len[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(EvalKey::decode(&huge_len), None, "oversized length");
    }

    #[test]
    fn length_prefixes_prevent_field_bleed() {
        // Same concatenated content, different field split.
        let a = EvalKey {
            x_bits: vec![1, 2],
            spec_id: String::new(),
            ..base()
        };
        let b = EvalKey {
            x_bits: vec![1],
            spec_id: String::from_utf8(2u64.to_le_bytes().to_vec()).unwrap(),
            ..base()
        };
        assert_ne!(a.encode(), b.encode());
    }
}
