//! Fabric integration tests against a live two-shard router.
//!
//! * The checked-in golden NDJSON fixture replays through a two-shard
//!   fabric and must come back byte-identical — the acceptance bar for
//!   the router's transparency on a *multi*-shard fabric.
//! * `stats` sums counters across shards, with the per-shard breakdown
//!   opt-in via `"shards":true`.
//! * Load beyond `max_inflight` is shed with the typed
//!   `{"error":{"kind":"overloaded"}}` frame.
//! * A killed shard fails over (requests keep getting answered) and
//!   rejoins after restart, observable through `shard_map`.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use oa_fault::{Faults, RetryPolicy};
use oa_router::{start, Fabric, RouterConfig};
use oa_serve::{request, serve, Client, ClientConfig, Json};

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "oa_router_it_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// A patient retrying client profile for the failover test.
fn resilient() -> ClientConfig {
    ClientConfig {
        retry: RetryPolicy {
            max_attempts: 12,
            base_millis: 2,
            cap_millis: 20,
        },
        timeout_millis: Some(2_000),
    }
}

/// Zeroes every `"micros":<number>` — same canonicalization as the
/// golden protocol fixture.
fn canonicalize(line: &str) -> String {
    let marker = "\"micros\":";
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(at) = rest.find(marker) {
        let (head, tail) = rest.split_at(at + marker.len());
        out.push_str(head);
        out.push('0');
        let digits = tail
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(tail.len());
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

/// Parses `tests/golden/protocol.txt` (`> request` / `< response` pairs).
fn golden_pairs() -> Vec<(String, String)> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../serve/tests/golden/protocol.txt");
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden fixture {} unreadable: {e}", path.display()));
    let mut pairs = Vec::new();
    let mut pending: Option<String> = None;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(req) = line.strip_prefix("> ") {
            pending = Some(req.to_owned());
        } else if let Some(resp) = line.strip_prefix("< ") {
            let req = pending.take().expect("fixture response without request");
            pairs.push((req, resp.to_owned()));
        }
    }
    pairs
}

#[test]
fn golden_fixture_passes_unchanged_through_a_two_shard_fabric() {
    let dir = temp_dir("golden");
    let _ = fs::remove_dir_all(&dir);
    // Same session limit as the fixture's direct harness
    // (GOLDEN_SESSION_LIMIT in oa-serve's golden_protocol test), so the
    // scripted `session_limit` overflow reproduces on every shard.
    let fabric = Fabric::spawn_with(2, &dir, |_| {}, |shard| shard.session_limit = 3)
        .expect("fabric starts");
    let mut client = Client::connect(fabric.router.addr()).expect("connect");
    for (i, (req, expected)) in golden_pairs().into_iter().enumerate() {
        let actual = canonicalize(&client.request(&req).expect("request"));
        assert_eq!(
            expected, actual,
            "golden pair {i} ({req}): two-shard fabric response diverged"
        );
    }
    drop(client);
    fabric.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stats_sum_across_shards_with_optional_breakdown() {
    let dir = temp_dir("stats");
    let _ = fs::remove_dir_all(&dir);
    let fabric = Fabric::spawn(2, &dir, |_| {}).expect("fabric starts");
    let mut client = Client::connect(fabric.router.addr()).expect("connect");

    // Sims spread over topologies that land on both shards.
    let mut sims = 0u64;
    for (i, topology) in [0usize, 97, 1031, 4_444, 17_001].into_iter().enumerate() {
        let line = request::eval(i as u64, "S-1", topology, &x_for(topology));
        let response = client.request(&line).expect("eval");
        assert!(response.contains("\"ok\":true"), "eval failed: {response}");
        sims += 1;
    }

    // Summed view: counters add, the per-shard identity field is gone.
    let summed = client.request(&request::stats(50)).expect("stats");
    let parsed = Json::parse(&summed).expect("stats parses");
    let result = parsed.get("result").expect("result");
    assert_eq!(result.get("sims").and_then(Json::as_u64), Some(sims));
    assert_eq!(
        result
            .get("endpoints")
            .and_then(|e| e.get("eval"))
            .and_then(|e| e.get("count"))
            .and_then(Json::as_u64),
        Some(sims)
    );
    assert!(result.get("shard").is_none(), "identity must be dropped");
    assert!(result.get("shards").is_none(), "breakdown is opt-in");

    // Breakdown view: the same sums plus the raw per-shard objects.
    let detailed = client
        .request(r#"{"id":51,"op":"stats","shards":true}"#)
        .expect("stats breakdown");
    let parsed = Json::parse(&detailed).expect("breakdown parses");
    let result = parsed.get("result").expect("result");
    assert_eq!(result.get("sims").and_then(Json::as_u64), Some(sims));
    let shards = result
        .get("shards")
        .and_then(Json::as_arr)
        .expect("breakdown array");
    assert_eq!(shards.len(), 2);
    for (i, shard) in shards.iter().enumerate() {
        let identity = shard.get("shard").expect("per-shard identity");
        assert_eq!(identity.get("index").and_then(Json::as_u64), Some(i as u64));
        assert_eq!(identity.get("count").and_then(Json::as_u64), Some(2));
    }
    let per_shard_sims: u64 = shards
        .iter()
        .map(|s| s.get("sims").and_then(Json::as_u64).unwrap_or(0))
        .sum();
    assert_eq!(per_shard_sims, sims, "breakdown must add up to the sum");

    drop(client);
    fabric.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn overload_is_shed_with_a_typed_frame() {
    let dir = temp_dir("shed");
    let _ = fs::remove_dir_all(&dir);
    // max_inflight = 0: every request is pushback.
    let fabric = Fabric::spawn(1, &dir, |config| config.max_inflight = 0).expect("fabric starts");
    let mut client = Client::connect(fabric.router.addr()).expect("connect");
    let response = client
        .request(&request::eval(7, "S-1", 0, &x_for(0)))
        .expect("request");
    assert_eq!(
        response,
        r#"{"id":7,"ok":false,"error":{"kind":"overloaded"}}"#
    );
    drop(client);
    fabric.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn killed_shard_fails_over_and_rejoins() {
    let dir = temp_dir("failover");
    let _ = fs::remove_dir_all(&dir);
    let mut fabric = Fabric::spawn(2, &dir, |_| {}).expect("fabric starts");
    let mut client = Client::connect_with(fabric.router.addr(), resilient()).expect("connect");

    // Baseline answers with both shards up.
    let topologies = [0usize, 97, 1031, 4_444, 17_001];
    let lines: Vec<String> = topologies
        .iter()
        .enumerate()
        .map(|(i, &t)| request::eval(i as u64, "S-1", t, &x_for(t)))
        .collect();
    let baseline: Vec<String> = lines
        .iter()
        .map(|l| client.request_with_retry(l).expect("baseline eval"))
        .collect();

    // Kill shard 1. Every request must still be answered — and
    // byte-identically, because failover stand-ins recompute the same
    // deterministic results (the stores differ; the bytes cannot).
    let victim = fabric.shards.remove(1);
    let addr = fabric.shard_addrs[1].clone();
    victim.kill();
    for (line, expected) in lines.iter().zip(&baseline) {
        let response = client.request_with_retry(line).expect("failover eval");
        assert_eq!(&response, expected, "failover diverged for {line}");
    }
    // Routability must read as degraded while the shard is away.
    let map = client
        .request(r#"{"id":90,"op":"shard_map"}"#)
        .expect("shard_map");
    assert!(map.contains("\"up\":false"), "dead link must show: {map}");

    // Restart on the same port over the same store; the background
    // redial pacing rejoins the link without any request traffic.
    let restarted = restart_on(&addr, &dir, 1);
    fabric.shards.insert(1, restarted);
    let mut rejoined = false;
    for _ in 0..500 {
        let map = client
            .request(r#"{"id":91,"op":"shard_map"}"#)
            .expect("shard_map");
        if !map.contains("\"up\":false") {
            rejoined = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(rejoined, "restarted shard never rejoined the fabric");

    // Post-rejoin traffic is served (store-backed, still byte-identical).
    for (line, expected) in lines.iter().zip(&baseline) {
        let response = client.request_with_retry(line).expect("post-rejoin eval");
        assert_eq!(&response, expected, "post-rejoin diverged for {line}");
    }

    drop(client);
    fabric.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn shard_map_census_covers_the_design_space() {
    let dir = temp_dir("census");
    let _ = fs::remove_dir_all(&dir);
    let fabric = Fabric::spawn(3, &dir, |_| {}).expect("fabric starts");
    let mut client = Client::connect(fabric.router.addr()).expect("connect");
    let map = client
        .request(r#"{"id":1,"op":"shard_map"}"#)
        .expect("shard_map");
    let parsed = Json::parse(&map).expect("shard_map parses");
    let result = parsed.get("result").expect("result");
    assert_eq!(result.get("shards").and_then(Json::as_u64), Some(3));
    let backends = result
        .get("backends")
        .and_then(Json::as_arr)
        .expect("backends");
    assert_eq!(backends.len(), 3);
    let owned: u64 = backends
        .iter()
        .map(|b| b.get("owned").and_then(Json::as_u64).unwrap_or(0))
        .sum();
    assert_eq!(
        owned,
        oa_circuit::DESIGN_SPACE_SIZE as u64,
        "census must partition the whole design space"
    );
    drop(client);
    fabric.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn router_requires_at_least_one_shard() {
    assert!(start(RouterConfig::loopback(Vec::new())).is_err());
}

/// An in-range parameter vector for `topology`.
fn x_for(topology: usize) -> Vec<f64> {
    use oa_circuit::{ParamSpace, Topology};
    let t = Topology::from_index(topology).expect("test topology in range");
    let dim = ParamSpace::for_topology(&t).dim();
    (0..dim)
        .map(|j| 0.25 + 0.5 * (j as f64) / dim.max(1) as f64)
        .collect()
}

/// Restarts a killed shard on its old concrete address over the same
/// store directory, retrying while the dead listener drains.
fn restart_on(addr: &str, store_dir: &std::path::Path, index: u32) -> oa_serve::Server {
    use oa_router::fabric::shard_config;
    for _ in 0..50 {
        if let Ok(server) = serve(shard_config(addr, store_dir, index, 2, Faults::none())) {
            return server;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("could not rebind {addr} after shard kill");
}
