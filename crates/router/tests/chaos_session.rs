//! Session chaos trials over the pinned seed corpus.
//!
//! Each trial runs a BO session (open → steps → stats → close) against a
//! two-shard fabric whose router runs a seeded link storm and whose
//! shards inject `session_step` failures — while the shard that owns the
//! session is killed outright and restarted mid-workload. The
//! [`oa_serve::SessionDriver`] resends injected steps and replays the
//! recorded prefix into the restarted owner; the trial demands the
//! logical response stream byte-match a fault-free fabric.
//!
//! Trials pay real kill/restart latency, so only the corpus head runs
//! by default; set `OA_CHAOS_FULL=1` for the whole corpus (the CI chaos
//! job does), or `OA_CHAOS_SEED=<N>` to replay one seed.
//!
//! Besides byte-identity, the surviving logical stream must be accepted
//! by the protocol automaton compiled from `crates/serve/protocol.spec`
//! — in particular the lifecycle obligations (`step` echoes exactly
//! counter+1, `close` echoes the count), which is precisely what the
//! driver's failover replay must preserve.

use std::fs;
use std::path::PathBuf;

use oa_analyze::protocol::{Automaton, ProtocolSpec};
use oa_router::chaos::session_trial;
use oa_serve::chaos::load_seed_corpus;

fn assert_conforms(seed: u64, requests: &[String], responses: &[String]) {
    let spec = ProtocolSpec::parse(include_str!("../../serve/protocol.spec"))
        .expect("protocol.spec must parse");
    assert_eq!(requests.len(), responses.len(), "seed {seed}: ragged trace");
    let mut automaton = Automaton::new(&spec);
    for (req, resp) in requests.iter().zip(responses) {
        automaton.observe(req, resp).unwrap_or_else(|e| {
            panic!("seed {seed}: trace violates protocol.spec: {e}\n  > {req}\n  < {resp}")
        });
    }
}

fn corpus() -> Vec<u64> {
    if let Some(seed) = std::env::var("OA_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        return vec![seed];
    }
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/seeds/chaos_session.txt");
    let mut seeds = load_seed_corpus(&path).expect("pinned session seed corpus must parse");
    if std::env::var_os("OA_CHAOS_FULL").is_none() {
        seeds.truncate(2);
    }
    seeds
}

fn temp_dir() -> PathBuf {
    std::env::temp_dir().join(format!("oa_session_chaos_corpus_{}", std::process::id()))
}

#[test]
fn corpus_sessions_replay_byte_identically_through_owner_kill() {
    let dir = temp_dir();
    let _ = fs::remove_dir_all(&dir);
    for seed in corpus() {
        let trial = session_trial(&dir.join(format!("s{seed}")), seed)
            .unwrap_or_else(|e| panic!("seed {seed}: session trial failed to run: {e}"));
        assert!(
            trial.matches_baseline,
            "seed {seed}: session iterate stream diverged from the fault-free baseline:\n{}",
            trial.responses.join("\n")
        );
        assert!(
            trial.router_stats.injected + trial.shard_stats.injected > 0,
            "seed {seed}: the storms must inject for the invariant to mean anything"
        );
        assert_conforms(seed, &trial.requests, &trial.responses);
    }
    let _ = fs::remove_dir_all(&dir);
}
