//! Differential test: a one-shard router must be byte-transparent.
//!
//! The same request script runs against a direct `oa-serve` and against
//! a router fronting a single shard; every response must match byte for
//! byte (`stats` modulo the canonicalized `micros` counters, the one
//! wall-clock field in the protocol). This pins the fabric's central
//! contract — forwarding rewrites only the `id` field in flight — on
//! every protocol surface: evals, store hits, all top-level error
//! shapes, typed per-item batch errors, `size_opt`, and `stats`.

use std::fs;
use std::path::PathBuf;

use oa_circuit::{ParamSpace, Topology};
use oa_router::Fabric;
use oa_serve::{serve, Client, ServerConfig};

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "oa_router_diff_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn x_literal(topology: usize) -> String {
    let t = Topology::from_index(topology).expect("test topology in range");
    let dim = ParamSpace::for_topology(&t).dim();
    let xs: Vec<String> = (0..dim)
        .map(|j| format!("{:.3}", 0.3 + 0.4 * j as f64 / dim.max(1) as f64))
        .collect();
    format!("[{}]", xs.join(","))
}

/// Every protocol surface at least once, in one serial script.
fn script() -> Vec<String> {
    let x0 = x_literal(0);
    let x2048 = x_literal(2048);
    vec![
        format!(r#"{{"id":1,"op":"eval","spec":"S-1","topology":0,"x":{x0}}}"#),
        // Store hit: byte-identical replay of the first eval.
        format!(r#"{{"id":2,"op":"eval","spec":"S-1","topology":0,"x":{x0}}}"#),
        format!(r#"{{"id":3,"op":"eval","spec":"S-2","topology":2048,"x":{x2048}}}"#),
        // Unparseable JSON: the router must answer with the shard's bytes.
        "{nope".to_owned(),
        r#"{"id":4,"op":"warp"}"#.to_owned(),
        r#"{"id":5,"spec":"S-1"}"#.to_owned(),
        format!(r#"{{"id":6,"op":"eval","spec":"S-1","topology":999999,"x":{x0}}}"#),
        r#"{"id":7,"op":"eval","spec":"S-1","topology":0}"#.to_owned(),
        format!(
            r#"{{"id":8,"op":"eval_batch","spec":"S-1","items":[{{"topology":0,"x":{x0}}},{{"topology":2048,"x":{x2048}}},{{"topology":999999}}]}}"#
        ),
        r#"{"id":9,"op":"size_opt","spec":"S-1","topology":0,"seed":11,"n_init":2,"n_iter":1}"#
            .to_owned(),
        r#"{"id":10,"op":"stats"}"#.to_owned(),
    ]
}

/// Zeroes every `"micros":<number>` — same canonicalization as the
/// golden protocol fixture.
fn canonicalize(line: &str) -> String {
    let marker = "\"micros\":";
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(at) = rest.find(marker) {
        let (head, tail) = rest.split_at(at + marker.len());
        out.push_str(head);
        out.push('0');
        let digits = tail
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(tail.len());
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

#[test]
fn one_shard_router_is_byte_transparent() {
    let dir = temp_dir("transparent");
    let _ = fs::remove_dir_all(&dir);

    // Direct: a plain single oa-serve.
    let mut direct_config = ServerConfig::loopback();
    direct_config.store_path = dir.join("direct").join("results.log");
    let direct_server = serve(direct_config).expect("direct server starts");
    let mut direct_client = Client::connect(direct_server.addr()).expect("direct connect");
    let direct: Vec<String> = script()
        .iter()
        .map(|line| canonicalize(&direct_client.request(line).expect("direct request")))
        .collect();
    drop(direct_client);
    direct_server.shutdown();

    // Fabric: the same script through a one-shard router.
    let fabric = Fabric::spawn(1, &dir.join("fabric"), |_| {}).expect("fabric starts");
    let mut client = Client::connect(fabric.router.addr()).expect("router connect");
    let routed: Vec<String> = script()
        .iter()
        .map(|line| canonicalize(&client.request(line).expect("routed request")))
        .collect();
    drop(client);
    fabric.shutdown();

    for (i, (d, r)) in direct.iter().zip(&routed).enumerate() {
        assert_eq!(
            d,
            r,
            "request {i} ({}): routed response diverged from direct oa-serve",
            script()[i]
        );
    }
    let _ = fs::remove_dir_all(&dir);
}
