//! Router chaos trials over the pinned seed corpus.
//!
//! Each trial runs the fabric workload against a two-shard router under
//! a seeded storm of injected shard-link drops and response write
//! stalls, kills and restarts shard 0 outright mid-workload, and
//! demands client-visible byte-identity with a fault-free fabric.
//!
//! Trials pay real kill/restart latency, so only the corpus head runs
//! by default; set `OA_CHAOS_FULL=1` for the whole corpus (the CI chaos
//! job does), or `OA_CHAOS_SEED=<N>` to replay one seed.
//!
//! Besides byte-identity, every surviving trace must be accepted by the
//! protocol automaton compiled from `crates/serve/protocol.spec` — the
//! fabric may reroute and resend under the storm, but what clients see
//! must still be the declared protocol.

use std::fs;
use std::path::PathBuf;

use oa_analyze::protocol::{Automaton, ProtocolSpec};
use oa_router::chaos::router_trial;
use oa_serve::chaos::load_seed_corpus;

fn assert_conforms(seed: u64, requests: &[String], responses: &[String]) {
    let spec = ProtocolSpec::parse(include_str!("../../serve/protocol.spec"))
        .expect("protocol.spec must parse");
    assert_eq!(requests.len(), responses.len(), "seed {seed}: ragged trace");
    let mut automaton = Automaton::new(&spec);
    for (req, resp) in requests.iter().zip(responses) {
        automaton.observe(req, resp).unwrap_or_else(|e| {
            panic!("seed {seed}: trace violates protocol.spec: {e}\n  > {req}\n  < {resp}")
        });
    }
}

fn corpus() -> Vec<u64> {
    if let Some(seed) = std::env::var("OA_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        return vec![seed];
    }
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/seeds/chaos_router.txt");
    let mut seeds = load_seed_corpus(&path).expect("pinned router seed corpus must parse");
    if std::env::var_os("OA_CHAOS_FULL").is_none() {
        seeds.truncate(2);
    }
    seeds
}

fn temp_dir() -> PathBuf {
    std::env::temp_dir().join(format!("oa_router_chaos_corpus_{}", std::process::id()))
}

#[test]
fn corpus_seeds_recover_byte_identically_through_shard_kill() {
    let dir = temp_dir();
    let _ = fs::remove_dir_all(&dir);
    for seed in corpus() {
        let trial = router_trial(&dir.join(format!("s{seed}")), seed)
            .unwrap_or_else(|e| panic!("seed {seed}: trial failed to run: {e}"));
        assert!(
            trial.matches_baseline,
            "seed {seed}: fabric responses diverge from the fault-free baseline \
             (trace {:016x}):\n{}",
            trial.trace_hash,
            trial.responses.join("\n")
        );
        assert!(
            trial.stats.injected > 0,
            "seed {seed}: the storm must inject for the invariant to mean anything"
        );
        assert_conforms(seed, &trial.requests, &trial.responses);
    }
    let _ = fs::remove_dir_all(&dir);
}
