//! Byte-level surgery on NDJSON frames.
//!
//! The router's byte-identity contract forbids a parse→re-encode round
//! trip on payloads it forwards: re-encoding could normalize float text
//! and change response bytes. Instead, frames are edited *in place* with
//! a small string-and-depth-aware scanner: the `id` field is spliced to
//! an internal sub-request id on the way to a shard and spliced back on
//! the way out, and batch `items` are split/merged as raw substrings.
//! Everything outside the edited span keeps its exact bytes.
//!
//! Responses from `oa-serve` have a fixed shape (`{"id":…,"ok":…,…}`,
//! no whitespace) which [`split_response`] relies on; client *requests*
//! are scanned with full whitespace tolerance.

use std::ops::Range;

/// Returns the end (exclusive) of the JSON value starting at `start`,
/// or `None` on malformed input. String-aware (escapes honored),
/// depth-counting for objects/arrays; numbers and literals end at the
/// first structural byte.
pub fn scan_value(bytes: &[u8], start: usize) -> Option<usize> {
    let mut i = start;
    match *bytes.get(i)? {
        b'"' => {
            i += 1;
            while let Some(&b) = bytes.get(i) {
                match b {
                    b'\\' => i += 2,
                    b'"' => return Some(i + 1),
                    _ => i += 1,
                }
            }
            None
        }
        b'{' | b'[' => {
            let mut depth = 0usize;
            while let Some(&b) = bytes.get(i) {
                match b {
                    b'"' => i = scan_value(bytes, i)?.wrapping_sub(1),
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(i + 1);
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            None
        }
        _ => {
            // Number / true / false / null: ends at a structural byte.
            while !matches!(bytes.get(i), None | Some(b',' | b'}' | b']' | b' ' | b'\t')) {
                i += 1;
            }
            (i > start).then_some(i)
        }
    }
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while matches!(bytes.get(i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
        i += 1;
    }
    i
}

/// The byte range of the value of top-level key `key` in an object
/// `line`, or `None` if absent or malformed. Whitespace-tolerant.
pub fn top_level_value(line: &str, key: &str) -> Option<Range<usize>> {
    let bytes = line.as_bytes();
    let mut i = skip_ws(bytes, 0);
    if bytes.get(i) != Some(&b'{') {
        return None;
    }
    i = skip_ws(bytes, i + 1);
    if bytes.get(i) == Some(&b'}') {
        return None;
    }
    loop {
        // Key string.
        if bytes.get(i) != Some(&b'"') {
            return None;
        }
        let key_end = scan_value(bytes, i)?;
        let this_key = line.get(i + 1..key_end.checked_sub(1)?)?;
        i = skip_ws(bytes, key_end);
        if bytes.get(i) != Some(&b':') {
            return None;
        }
        i = skip_ws(bytes, i + 1);
        let value_end = scan_value(bytes, i)?;
        if this_key == key {
            return Some(i..value_end);
        }
        i = skip_ws(bytes, value_end);
        match bytes.get(i) {
            Some(&b',') => i = skip_ws(bytes, i + 1),
            Some(&b'}') => return None,
            _ => return None,
        }
    }
}

/// Rewrites the top-level `id` of a request object to `sub_id`,
/// inserting the field when absent. Returns `None` when `line` is not a
/// JSON object (such lines never reach a shard — the router answers
/// parse errors locally).
pub fn rewrite_request_id(line: &str, sub_id: u64) -> Option<String> {
    let bytes = line.as_bytes();
    if bytes.get(skip_ws(bytes, 0)) != Some(&b'{') {
        return None;
    }
    if let Some(range) = top_level_value(line, "id") {
        let mut out = String::with_capacity(line.len() + 8);
        out.push_str(line.get(..range.start)?);
        out.push_str(&sub_id.to_string());
        out.push_str(line.get(range.end..)?);
        Some(out)
    } else {
        let brace = skip_ws(bytes, 0);
        let after = skip_ws(bytes, brace + 1);
        let empty = bytes.get(after) == Some(&b'}');
        let mut out = String::with_capacity(line.len() + 12);
        out.push_str(line.get(..=brace)?);
        out.push_str("\"id\":");
        out.push_str(&sub_id.to_string());
        if !empty {
            out.push(',');
        }
        out.push_str(line.get(brace + 1..)?);
        Some(out)
    }
}

/// A shard response split into its envelope parts, payload kept as raw
/// bytes of the original frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitResponse<'a> {
    /// The echoed id text (raw bytes, e.g. `17`).
    pub id: &'a str,
    /// The `ok` flag.
    pub ok: bool,
    /// Raw payload text: the `result` value when `ok`, the `error`
    /// value otherwise.
    pub payload: &'a str,
}

/// Splits an `oa-serve` response frame — exactly
/// `{"id":ID,"ok":true,"result":R}` or `{"id":ID,"ok":false,"error":E}`
/// — into its parts without copying. Returns `None` for anything else;
/// the caller treats that as a shard protocol violation.
pub fn split_response(frame: &str) -> Option<SplitResponse<'_>> {
    let bytes = frame.as_bytes();
    let rest = frame.strip_prefix("{\"id\":")?;
    let id_start = frame.len() - rest.len();
    let id_end = scan_value(bytes, id_start)?;
    let id = frame.get(id_start..id_end)?;
    let tail = frame.get(id_end..)?;
    let (ok, marker) = if let Some(t) = tail.strip_prefix(",\"ok\":true,\"result\":") {
        (true, t)
    } else if let Some(t) = tail.strip_prefix(",\"ok\":false,\"error\":") {
        (false, t)
    } else {
        return None;
    };
    let payload = marker.strip_suffix('}')?;
    let payload_start = frame.len() - marker.len();
    // The payload must be exactly one value (guards truncated frames).
    if scan_value(bytes, payload_start)? != payload_start + payload.len() {
        return None;
    }
    Some(SplitResponse { id, ok, payload })
}

/// Splits the raw elements of the top-level array `key` of `line` (a
/// request's `"items"`, a result's `"items"`). Returns `None` when the
/// key is absent or not an array.
pub fn split_array(line: &str, key: &str) -> Option<Vec<Range<usize>>> {
    let range = top_level_value(line, key)?;
    let bytes = line.as_bytes();
    if bytes.get(range.start) != Some(&b'[') {
        return None;
    }
    let mut elements = Vec::new();
    let mut i = skip_ws(bytes, range.start + 1);
    if bytes.get(i) == Some(&b']') {
        return Some(elements);
    }
    loop {
        let end = scan_value(bytes, i)?;
        elements.push(i..end);
        i = skip_ws(bytes, end);
        match bytes.get(i) {
            Some(&b',') => i = skip_ws(bytes, i + 1),
            Some(&b']') => return Some(elements),
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_value_handles_nesting_and_escapes() {
        let s = br#"{"a":[1,{"b":"x\"y"}],"c":null}"#;
        assert_eq!(scan_value(s, 0), Some(s.len()));
        let s = b"123,rest";
        assert_eq!(scan_value(s, 0), Some(3));
        let s = b"\"unterminated";
        assert_eq!(scan_value(s, 0), None);
    }

    #[test]
    fn top_level_value_finds_keys_at_depth_one_only() {
        let line = r#"{ "op" : "eval" , "x":[1,2], "id" : 42 }"#;
        let r = top_level_value(line, "id").unwrap();
        assert_eq!(&line[r], "42");
        let r = top_level_value(line, "x").unwrap();
        assert_eq!(&line[r], "[1,2]");
        // A nested "id" must not match.
        let line = r#"{"outer":{"id":9},"op":"eval"}"#;
        assert_eq!(top_level_value(line, "id"), None);
    }

    #[test]
    fn rewrite_request_id_replaces_and_inserts() {
        assert_eq!(
            rewrite_request_id(r#"{"id":7,"op":"stats"}"#, 99).unwrap(),
            r#"{"id":99,"op":"stats"}"#
        );
        assert_eq!(
            rewrite_request_id(r#"{"op":"stats"}"#, 5).unwrap(),
            r#"{"id":5,"op":"stats"}"#
        );
        assert_eq!(rewrite_request_id("{}", 1).unwrap(), r#"{"id":1}"#);
        assert_eq!(rewrite_request_id("[1,2]", 1), None);
        // Only the id bytes change; float text elsewhere is untouched.
        let line = r#"{"x":[2.50000000000000000e-1],"id":3}"#;
        assert_eq!(
            rewrite_request_id(line, 8).unwrap(),
            r#"{"x":[2.50000000000000000e-1],"id":8}"#
        );
    }

    #[test]
    fn split_response_extracts_raw_payloads() {
        let ok = r#"{"id":12,"ok":true,"result":{"n":1,"items":[{"fom":1.0e0}]}}"#;
        let s = split_response(ok).unwrap();
        assert_eq!(s.id, "12");
        assert!(s.ok);
        assert_eq!(s.payload, r#"{"n":1,"items":[{"fom":1.0e0}]}"#);

        let err = r#"{"id":null,"ok":false,"error":"missing string field 'op'"}"#;
        let s = split_response(err).unwrap();
        assert_eq!(s.id, "null");
        assert!(!s.ok);
        assert_eq!(s.payload, r#""missing string field 'op'""#);

        assert_eq!(split_response(r#"{"ok":true}"#), None);
        assert_eq!(split_response(r#"{"id":1,"ok":true,"result":{"#), None);
    }

    #[test]
    fn split_array_yields_raw_elements() {
        let line = r#"{"id":9,"items":[{"topology":0,"x":[1.0e0]}, 7 ,"s"],"op":"eval_batch"}"#;
        let parts = split_array(line, "items").unwrap();
        let texts: Vec<&str> = parts.into_iter().map(|r| &line[r]).collect();
        assert_eq!(texts, vec![r#"{"topology":0,"x":[1.0e0]}"#, "7", r#""s""#]);
        assert_eq!(split_array(r#"{"items":[]}"#, "items").unwrap(), vec![]);
        assert_eq!(split_array(r#"{"items":3}"#, "items"), None);
    }
}
