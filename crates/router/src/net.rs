//! `oa_net`: std-only nonblocking sockets for the router's event loop.
//!
//! The workspace forbids `unsafe` in every crate, which rules out raw
//! `epoll`/`kqueue` FFI; instead the event loop runs a *sweep poller*:
//! every socket is `set_nonblocking(true)` and each iteration drains
//! reads and flushes writes until `WouldBlock`, then an [`IdleBackoff`]
//! sleeps the loop when nothing moved (100 µs escalating to 5 ms). Idle
//! connections therefore cost one failed `read` per sweep and no thread
//! — the "~100k idle clients, no threads" budget — at the price of sweep
//! latency instead of kernel wakeups. The `Conn` buffer discipline
//! (frame reassembly, bounded buffers) is poller-agnostic, so swapping
//! in a readiness syscall later only touches the loop, not the framing.
//!
//! Frames are newline-delimited; a partial frame stays in `rbuf` until
//! its newline arrives. Read frames are capped at [`MAX_FRAME`] and the
//! pending write buffer at [`MAX_WRITE_BUFFER`]; a peer exceeding either
//! is dropped (slow-consumer / oversized-frame protection).

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Hard cap on one request/response frame (1 MiB).
pub const MAX_FRAME: usize = 1 << 20;

/// Hard cap on unflushed response bytes per connection (8 MiB); beyond
/// it the peer is considered a non-consuming client and dropped.
pub const MAX_WRITE_BUFFER: usize = 8 << 20;

/// Read chunk size per `read` call.
const READ_CHUNK: usize = 64 * 1024;

/// What a sweep over one connection produced.
#[derive(Debug, Default)]
pub struct SweepOutcome {
    /// Complete frames (newline stripped) read this sweep.
    pub frames: Vec<String>,
    /// The connection is finished (EOF, error, or protocol violation)
    /// and must be discarded by the caller.
    pub closed: bool,
    /// Any bytes moved in either direction (drives the idle backoff).
    pub progressed: bool,
}

/// One nonblocking connection: the stream plus read-reassembly and
/// write-spool buffers.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: VecDeque<u8>,
}

impl Conn {
    /// Wraps an accepted or dialed stream, switching it to nonblocking.
    ///
    /// # Errors
    ///
    /// Socket option failures.
    pub fn new(stream: TcpStream) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: VecDeque::new(),
        })
    }

    /// Dials `addr` (fresh resolution via [`oa_serve::resolve`]) and
    /// wraps the stream. The connect itself is blocking — shard dials
    /// are loopback/LAN and paced by the caller's reconnect backoff —
    /// but the returned connection is nonblocking.
    ///
    /// # Errors
    ///
    /// Resolution or connection failures.
    pub fn dial(addr_text: &str) -> std::io::Result<Conn> {
        let addrs = oa_serve::resolve(addr_text)?;
        // lint: allow(nonblocking_event_loop, the one whitelisted blocking site: shard dials are loopback/LAN and paced by the reconnect backoff (DESIGN.md §11))
        Conn::new(TcpStream::connect(addrs.as_slice())?)
    }

    /// Queues response bytes (the caller appends the newline).
    pub fn queue(&mut self, bytes: &[u8]) {
        self.wbuf.extend(bytes);
    }

    /// Unflushed write bytes.
    pub fn queued(&self) -> usize {
        self.wbuf.len()
    }

    /// Drains reads into complete frames and flushes queued writes,
    /// each until `WouldBlock`.
    pub fn sweep(&mut self) -> SweepOutcome {
        let mut outcome = SweepOutcome::default();
        self.sweep_read(&mut outcome);
        self.sweep_write(&mut outcome);
        if self.wbuf.len() > MAX_WRITE_BUFFER {
            outcome.closed = true;
        }
        outcome
    }

    fn sweep_read(&mut self, outcome: &mut SweepOutcome) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    outcome.closed = true;
                    break;
                }
                Ok(n) => {
                    outcome.progressed = true;
                    self.rbuf
                        .extend_from_slice(chunk.get(..n).unwrap_or_default());
                    self.extract_frames(outcome);
                    if outcome.closed {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    outcome.closed = true;
                    break;
                }
            }
        }
    }

    fn extract_frames(&mut self, outcome: &mut SweepOutcome) {
        let mut start = 0usize;
        loop {
            let rest = self.rbuf.get(start..).unwrap_or_default();
            let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
                break;
            };
            let frame = rest.get(..nl).unwrap_or_default();
            let mut text = String::from_utf8_lossy(frame).into_owned();
            while text.ends_with('\r') {
                text.pop();
            }
            if !text.trim().is_empty() {
                outcome.frames.push(text);
            }
            start += nl + 1;
        }
        self.rbuf.drain(..start);
        if self.rbuf.len() > MAX_FRAME {
            // A frame longer than the cap can never complete; the
            // stream cannot be resynchronized, so the peer goes away.
            outcome.closed = true;
        }
    }

    fn sweep_write(&mut self, outcome: &mut SweepOutcome) {
        while !self.wbuf.is_empty() {
            let (front, _) = self.wbuf.as_slices();
            match self.stream.write(front) {
                Ok(0) => {
                    outcome.closed = true;
                    return;
                }
                Ok(n) => {
                    outcome.progressed = true;
                    self.wbuf.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    outcome.closed = true;
                    return;
                }
            }
        }
    }
}

/// A nonblocking acceptor.
#[derive(Debug)]
pub struct Acceptor {
    listener: TcpListener,
}

impl Acceptor {
    /// Binds `addr` nonblocking.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn bind(addr: &str) -> std::io::Result<Acceptor> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Acceptor { listener })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Socket introspection failures.
    pub fn addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts every pending connection (until `WouldBlock`).
    pub fn accept_all(&self) -> Vec<Conn> {
        let mut accepted = Vec::new();
        while let Ok((stream, _)) = self.listener.accept() {
            if let Ok(conn) = Conn::new(stream) {
                accepted.push(conn);
            }
        }
        accepted
    }
}

/// Adaptive sleep for idle sweeps: nothing moved → sleep, escalating
/// 100 µs → 5 ms; any progress resets to busy. Pure counter state — no
/// wall-clock reads, so the loop stays within the determinism lint.
#[derive(Debug, Default)]
pub struct IdleBackoff {
    idle_sweeps: u32,
}

impl IdleBackoff {
    /// Reports whether the last sweep made progress; sleeps when idle.
    pub fn pace(&mut self, progressed: bool) {
        if progressed {
            self.idle_sweeps = 0;
            return;
        }
        self.idle_sweeps = self.idle_sweeps.saturating_add(1);
        let micros = (100u64 << self.idle_sweeps.min(6)).min(5_000);
        // lint: allow(nonblocking_event_loop, bounded idle backoff (≤5ms) when no connection made progress; trades latency for CPU by design)
        std::thread::sleep(Duration::from_micros(micros));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_reassemble_across_chunk_boundaries() {
        let acceptor = Acceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.addr().unwrap();
        let mut sender = TcpStream::connect(addr).unwrap();
        let mut conns = Vec::new();
        for _ in 0..100 {
            conns = acceptor.accept_all();
            if !conns.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let conn = &mut conns[0];

        sender.write_all(b"{\"id\":1}\n{\"id\"").unwrap();
        sender.flush().unwrap();
        let mut frames = Vec::new();
        for _ in 0..200 {
            frames.extend(conn.sweep().frames);
            if !frames.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(frames, vec!["{\"id\":1}".to_owned()]);

        // The tail half-frame completes on the next bytes.
        sender.write_all(b":2}\r\n").unwrap();
        sender.flush().unwrap();
        let mut frames = Vec::new();
        for _ in 0..200 {
            frames.extend(conn.sweep().frames);
            if !frames.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(frames, vec!["{\"id\":2}".to_owned()]);

        // Peer disconnect surfaces as closed.
        drop(sender);
        let mut closed = false;
        for _ in 0..200 {
            closed = conn.sweep().closed;
            if closed {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(closed);
    }

    #[test]
    fn oversized_frames_close_the_connection() {
        let acceptor = Acceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.addr().unwrap();
        let mut sender = TcpStream::connect(addr).unwrap();
        let mut conns = Vec::new();
        for _ in 0..100 {
            conns = acceptor.accept_all();
            if !conns.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let conn = &mut conns[0];
        let big = vec![b'x'; MAX_FRAME + 2];
        sender.write_all(&big).unwrap();
        sender.flush().unwrap();
        let mut closed = false;
        for _ in 0..500 {
            closed = conn.sweep().closed;
            if closed {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(closed, "a frame beyond MAX_FRAME must close the conn");
    }
}
