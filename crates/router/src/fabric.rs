//! An in-process fabric: N `oa-serve` shards plus the router, spawned
//! together. Backs `oa-router --spawn N`, the integration tests and the
//! chaos harness — everything that wants a whole fabric in one process.

use std::path::Path;

use oa_fault::Faults;
use oa_serve::{serve, Server, ServerConfig, ShardIdentity};

use crate::router::{start, Router, RouterConfig};

/// A router plus the in-process shard backends it fronts.
pub struct Fabric {
    /// The coordinator.
    pub router: Router,
    /// The shard backends, index-aligned with the router's shard list.
    pub shards: Vec<Server>,
    /// Shard addresses (texts the router dials).
    pub shard_addrs: Vec<String>,
}

impl Fabric {
    /// Spawns `n` shards (stores under `store_dir/shard<I>/results.log`)
    /// and a router over them. `configure` tweaks the router config
    /// after the defaults (fault plan, inflight bound, …).
    ///
    /// # Errors
    ///
    /// Store, bind or spawn failures.
    pub fn spawn(
        n: u32,
        store_dir: &Path,
        configure: impl FnOnce(&mut RouterConfig),
    ) -> std::io::Result<Fabric> {
        Self::spawn_with(n, store_dir, configure, |_| {})
    }

    /// Like [`Fabric::spawn`], additionally tweaking every shard's
    /// [`ServerConfig`] after the defaults (fault plan, session limit,
    /// …) — the golden-fixture replay uses this to pin the same session
    /// limit on every shard that the direct harness uses.
    ///
    /// # Errors
    ///
    /// Store, bind or spawn failures.
    pub fn spawn_with(
        n: u32,
        store_dir: &Path,
        configure: impl FnOnce(&mut RouterConfig),
        configure_shard: impl Fn(&mut ServerConfig),
    ) -> std::io::Result<Fabric> {
        let mut shards = Vec::with_capacity(n as usize);
        let mut shard_addrs = Vec::with_capacity(n as usize);
        for index in 0..n {
            let mut config = shard_config("127.0.0.1:0", store_dir, index, n, Faults::none());
            configure_shard(&mut config);
            let server = serve(config)?;
            shard_addrs.push(server.addr().to_string());
            shards.push(server);
        }
        let mut config = RouterConfig::loopback(shard_addrs.clone());
        configure(&mut config);
        let router = start(config)?;
        Ok(Fabric {
            router,
            shards,
            shard_addrs,
        })
    }

    /// Tears the whole fabric down (router first, then shards).
    pub fn shutdown(self) {
        self.router.shutdown();
        for shard in self.shards {
            shard.shutdown();
        }
    }
}

/// The canonical shard config: bounded queue, per-shard store file,
/// shard identity for `stats` introspection.
pub fn shard_config(
    addr: &str,
    store_dir: &Path,
    index: u32,
    count: u32,
    faults: Faults,
) -> ServerConfig {
    ServerConfig {
        addr: addr.to_owned(),
        workers: 2,
        queue: 64,
        store_path: store_dir.join(format!("shard{index}")).join("results.log"),
        faults,
        shard: Some(ShardIdentity { index, count }),
        session_limit: oa_serve::DEFAULT_SESSION_LIMIT,
    }
}
