//! `oa-router` — the fabric coordinator.
//!
//! Speaks the `oa-serve` NDJSON protocol to clients and fans requests
//! out to shard backends by consistent-hash placement over topology
//! ids. Responses are byte-identical to a single `oa-serve`; the only
//! fabric-specific frames are the local `shard_map` answer and the
//! typed `{"error":{"kind":…}}` pushback frames.

use std::process::exit;

use oa_fault::{FaultConfig, Faults};
use oa_router::{start, Fabric, RouterConfig, DEFAULT_VNODES};

const USAGE: &str = "\
oa-router — sharded eval fabric coordinator for the INTO-OA design space

USAGE:
    oa-router --shards HOST:PORT,HOST:PORT,... [OPTIONS]
    oa-router --spawn N [OPTIONS]

OPTIONS:
    --shards LIST      Comma-separated shard backend addresses (each an
                       oa-serve, ideally started with --shard I/N)
    --spawn N          Instead of external backends, spawn N in-process
                       shards on free ports (stores under
                       $OA_STORE_DIR/shard<I>/ or results/store/shard<I>/)
    --addr HOST:PORT   Bind address (default 127.0.0.1:7800; port 0 picks
                       a free port)
    --vnodes N         Virtual nodes per shard on the hash ring
                       (default 128)
    --max-inflight N   Client requests in flight before load shedding
                       with {\"error\":{\"kind\":\"overloaded\"}} (default 1024)
    --fault-seed N     CHAOS TESTING ONLY: seeded router storm (shard
                       link drops, response write stalls). Never use in
                       production.
    -h, --help         Print this help

PROTOCOL:
    The oa-serve protocol, unchanged, plus the \"shard_map\" op (placement
    census and backend health) and \"stats\" with \"shards\":true (summed
    fabric counters plus the per-shard breakdown). See DESIGN.md §11.

ENVIRONMENT:
    OA_STORE_DIR       Store directory root for --spawn shards
";

fn fail(message: &str) -> ! {
    eprintln!("error: {message}\n\n{USAGE}");
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shards: Vec<String> = Vec::new();
    let mut spawn: Option<u32> = None;
    let mut addr = "127.0.0.1:7800".to_owned();
    let mut vnodes = DEFAULT_VNODES;
    let mut max_inflight = 1024usize;
    let mut faults = Faults::none();

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            print!("{USAGE}");
            return;
        }
        let Some(value) = args.get(i + 1) else {
            fail(&format!("flag '{flag}' needs a value"));
        };
        match flag {
            "--shards" => {
                shards = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
                if shards.is_empty() {
                    fail("--shards needs at least one address");
                }
            }
            "--spawn" => match value.parse::<u32>() {
                Ok(n) if n >= 1 => spawn = Some(n),
                _ => fail("--spawn needs a positive shard count"),
            },
            "--addr" => addr = value.clone(),
            "--vnodes" => match value.parse::<u32>() {
                Ok(n) if n >= 1 => vnodes = n,
                _ => fail("--vnodes needs a positive integer"),
            },
            "--max-inflight" => match value.parse::<usize>() {
                Ok(n) => max_inflight = n,
                _ => fail("--max-inflight needs an unsigned integer"),
            },
            "--fault-seed" => match value.parse::<u64>() {
                Ok(seed) => faults = Faults::seeded(seed, FaultConfig::router_storm()),
                _ => fail("--fault-seed needs an unsigned integer"),
            },
            other => fail(&format!("unknown flag '{other}'")),
        }
        i += 2;
    }

    match (spawn, shards.is_empty()) {
        (Some(_), false) => fail("--spawn and --shards are mutually exclusive"),
        (None, true) => fail("one of --shards or --spawn is required"),
        _ => {}
    }

    if let Some(n) = spawn {
        let store_dir = oa_serve::default_store_dir();
        let fabric = match Fabric::spawn(n, &store_dir, |config| {
            config.addr = addr.clone();
            config.vnodes = vnodes;
            config.max_inflight = max_inflight;
            config.faults = faults.clone();
        }) {
            Ok(fabric) => fabric,
            Err(e) => {
                eprintln!("error: failed to spawn fabric: {e}");
                exit(1);
            }
        };
        // Exact line format is load-bearing: scripts scrape the address
        // (port 0 resolves here).
        println!("oa-router listening on {}", fabric.router.addr());
        println!(
            "  shards: {} (spawned in-process), vnodes: {vnodes}, store: {}",
            n,
            store_dir.display()
        );
        for (i, backend) in fabric.shard_addrs.iter().enumerate() {
            println!("  shard {i}: {backend}");
        }
        let Fabric {
            router,
            shards: _backends,
            ..
        } = fabric;
        // `_backends` stays alive for as long as the router runs.
        router.join();
        return;
    }

    let config = RouterConfig {
        addr,
        shards: shards.clone(),
        vnodes,
        max_inflight,
        max_resend: 8,
        reconnect_sweeps: 64,
        faults,
    };
    match start(config) {
        Ok(router) => {
            println!("oa-router listening on {}", router.addr());
            println!("  shards: {}, vnodes: {vnodes}", shards.len());
            for (i, backend) in shards.iter().enumerate() {
                println!("  shard {i}: {backend}");
            }
            router.join();
        }
        Err(e) => {
            eprintln!("error: failed to start: {e}");
            exit(1);
        }
    }
}
