//! Consistent-hash placement of topology ids onto shards.
//!
//! A classic hash ring with virtual nodes: every shard contributes
//! `vnodes` points, each the splitmix64 hash of `(shard, vnode)`, sorted
//! on a `u64` circle. A key routes to the owner of the first point at or
//! after its own hash (wrapping). The construction is a pure function of
//! `(shard count, vnodes)` — no randomness, no wall clock — so every
//! router instance computes the identical placement, and a client can
//! predict placement from the `shard_map` op alone.
//!
//! Properties the unit suite pins down:
//!
//! * **Determinism** — same `(shards, vnodes)` ⇒ same ring, bit for bit.
//! * **Balance** — with the default 128 vnodes, the 30 625-topology
//!   space spreads within 15% of the mean across 4 shards.
//! * **Minimal movement** — adding shard N+1 only moves keys *to* the
//!   new shard (existing points are untouched), at roughly a
//!   1/(N+1) fraction.

/// Default virtual nodes per shard — enough for <15% imbalance at the
/// design-space scale (see the balance test).
pub const DEFAULT_VNODES: u32 = 128;

/// splitmix64 finalizer: a strong 64-bit mix used for both ring points
/// and keys.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A consistent-hash ring mapping `u64` keys (topology ids) to shard
/// indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(point, shard)` pairs — the circle.
    points: Vec<(u64, u32)>,
    shards: u32,
    vnodes: u32,
}

impl HashRing {
    /// Builds the ring for `shards` backends with `vnodes` virtual nodes
    /// each. A zero `shards` yields an empty ring (routing returns
    /// `None`); `vnodes` is clamped to at least 1.
    pub fn new(shards: u32, vnodes: u32) -> HashRing {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity((shards as usize) * (vnodes as usize));
        for shard in 0..shards {
            for vnode in 0..vnodes {
                let point = mix(((shard as u64) << 32) | vnode as u64);
                points.push((point, shard));
            }
        }
        // Sort by point; break the (astronomically unlikely) point tie
        // by shard index so the ring is still a deterministic function
        // of its parameters.
        points.sort_unstable();
        HashRing {
            points,
            shards,
            vnodes,
        }
    }

    /// Number of shards the ring was built for.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// The owning shard for `key`, ignoring health.
    pub fn route(&self, key: u64) -> Option<u32> {
        self.route_excluding(key, &[])
    }

    /// The owning shard for `key`, skipping shards marked `true` in
    /// `down` (indexed by shard id; short slices mean "up"). Walking the
    /// ring past down owners is the failover rule: every router instance
    /// with the same view of shard health picks the same stand-in.
    pub fn route_excluding(&self, key: u64, down: &[bool]) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let h = mix(key);
        let start = self.points.partition_point(|&(p, _)| p < h) % self.points.len();
        // Walk at most one full circle; distinct shards appear long
        // before that, so the bound only matters when all are down.
        for step in 0..self.points.len() {
            let (_, shard) = *self.points.get((start + step) % self.points.len())?;
            if !down.get(shard as usize).copied().unwrap_or(false) {
                return Some(shard);
            }
        }
        None
    }

    /// Keys-per-shard census over `0..space` — the data behind the
    /// `shard_map` op and the balance test.
    pub fn census(&self, space: u64) -> Vec<u64> {
        let mut counts = vec![0u64; self.shards as usize];
        for key in 0..space {
            if let Some(count) = self.route(key).and_then(|s| counts.get_mut(s as usize)) {
                *count += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The INTO-OA design-space size (kept literal here so the ring
    /// crate layer stays dependency-free in spirit: the test pins the
    /// number the paper's space actually has).
    const SPACE: u64 = 30_625;

    #[test]
    fn ring_is_deterministic() {
        let a = HashRing::new(4, DEFAULT_VNODES);
        let b = HashRing::new(4, DEFAULT_VNODES);
        assert_eq!(a.points, b.points);
        for key in [0u64, 1, 17, 30_624, u64::MAX] {
            assert_eq!(a.route(key), b.route(key));
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::new(0, DEFAULT_VNODES);
        assert_eq!(ring.route(0), None);
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = HashRing::new(1, DEFAULT_VNODES);
        assert_eq!(ring.census(SPACE), vec![SPACE]);
    }

    #[test]
    fn balance_within_15_percent_across_4_shards() {
        let ring = HashRing::new(4, DEFAULT_VNODES);
        let counts = ring.census(SPACE);
        let mean = SPACE as f64 / 4.0;
        for (shard, &count) in counts.iter().enumerate() {
            let deviation = (count as f64 - mean).abs() / mean;
            assert!(
                deviation < 0.15,
                "shard {shard} owns {count} of {SPACE} ({:.1}% off the mean)",
                deviation * 100.0
            );
        }
        assert_eq!(counts.iter().sum::<u64>(), SPACE);
    }

    #[test]
    fn adding_a_shard_moves_keys_only_to_it() {
        let four = HashRing::new(4, DEFAULT_VNODES);
        let five = HashRing::new(5, DEFAULT_VNODES);
        let mut moved = 0u64;
        for key in 0..SPACE {
            let before = four.route(key).unwrap();
            let after = five.route(key).unwrap();
            if before != after {
                assert_eq!(after, 4, "key {key} moved between old shards");
                moved += 1;
            }
        }
        // Expect roughly 1/5 of the space to move; generous bounds keep
        // the test about the property, not the constant.
        let fraction = moved as f64 / SPACE as f64;
        assert!(
            (0.05..0.40).contains(&fraction),
            "moved fraction {fraction:.3} is far from 1/5"
        );
    }

    #[test]
    fn failover_skips_down_shards_and_walks_deterministically() {
        let ring = HashRing::new(4, DEFAULT_VNODES);
        for key in 0..200u64 {
            let home = ring.route(key).unwrap();
            let mut down = vec![false; 4];
            down[home as usize] = true;
            let standin = ring.route_excluding(key, &down).unwrap();
            assert_ne!(standin, home);
            // The walk is deterministic: same health view, same stand-in.
            assert_eq!(ring.route_excluding(key, &down), Some(standin));
        }
        assert_eq!(ring.route_excluding(0, &[true; 4]), None);
    }
}
