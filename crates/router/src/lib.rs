//! **oa-router** — a sharded multi-node eval fabric for the INTO-OA
//! serving stack.
//!
//! One coordinator speaks the existing NDJSON protocol to clients and
//! fans requests out to N `oa-serve` shard backends. The 30 625-topology
//! design space shards cleanly by topology id, so placement is a
//! consistent-hash ring over topology codes ([`HashRing`]): deterministic,
//! balanced, minimal movement when the fleet grows, introspectable via
//! the `shard_map` op. The coordinator itself is a std-only nonblocking
//! event loop ([`net`], one thread for the whole fabric front-end) with
//! per-connection frame reassembly, so idle clients cost buffers, not
//! threads.
//!
//! What the fabric guarantees (DESIGN.md §11):
//!
//! * **Byte identity** — a request routed through the fabric yields the
//!   exact bytes a single `oa-serve` would have produced; only the `id`
//!   field is ever rewritten in flight ([`frame`]).
//! * **Coalescing** — `eval_batch` items split per owning shard and
//!   re-merge in request order, typed per-item errors preserved;
//!   single-shard batches forward whole.
//! * **Backpressure** — bounded in-flight requests; excess load is shed
//!   with an explicit `{"error":{"kind":"overloaded"}}` frame rather
//!   than unbounded queueing.
//! * **Failover** — dead shard links re-dispatch their in-flight
//!   sub-requests along the ring walk; blind resends are safe because
//!   every endpoint is deterministic and store-backed. The chaos
//!   harness ([`chaos`]) kills and restarts shards mid-storm and holds
//!   recovery to the byte-identical bar.
//! * **Aggregation** — `stats` broadcasts to every shard and sums
//!   counters field-wise (per-shard breakdown under `"shards":[...]`
//!   on request).
//!
//! Binary: `oa-router --shards host:port,...` (or `--spawn N` for an
//! ephemeral in-process fabric). In-process use:
//!
//! ```no_run
//! use oa_router::{start, RouterConfig};
//!
//! let router = start(RouterConfig::loopback(vec![
//!     "127.0.0.1:7878".to_owned(),
//!     "127.0.0.1:7879".to_owned(),
//! ]))
//! .unwrap();
//! println!("fabric at {}", router.addr());
//! router.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod fabric;
pub mod frame;
pub mod net;
mod ring;
mod router;

pub use fabric::Fabric;
pub use ring::{HashRing, DEFAULT_VNODES};
pub use router::{event_loop, start, Router, RouterConfig, RouterState};
