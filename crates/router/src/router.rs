//! The coordinator: request routing, scatter/gather bookkeeping, shard
//! failover, backpressure, and the event loop that drives it all.
//!
//! ## Byte-identity contract
//!
//! For any request the router forwards, the response bytes delivered to
//! the client are exactly the bytes a single `oa-serve` would have
//! produced for the same request line: forwarding rewrites only the `id`
//! field (to an internal sub-request id, spliced back on the way out),
//! payloads are merged as raw substrings ([`crate::frame`]), and
//! protocol-level failures the router answers locally (unparseable JSON)
//! reuse `oa-serve`'s own renderer ([`oa_serve::error_response`]).
//! Router-originated failures — load shedding, no shard reachable — use
//! typed frames (`{"error":{"kind":"overloaded"}}`) that a single node
//! never emits, so clients can tell fabric pushback from eval errors.
//!
//! ## Placement
//!
//! Requests route by topology id over the [`HashRing`]; requests with no
//! usable topology (malformed, unknown op — anything a shard must still
//! count and answer) route by a hash of the raw line. `eval_batch`
//! splits per shard only when its items actually straddle shards;
//! single-shard batches forward whole, byte-for-byte. `stats` broadcasts
//! and sums; `shard_map` answers locally from the ring.
//!
//! ## Failover
//!
//! A dead shard link (EOF, write failure, injected [`Site::ShardDrop`])
//! orphans its in-flight sub-requests; each is re-dispatched to the next
//! live shard on the ring walk. Blind resends are safe because every
//! endpoint is deterministic and store-backed — the stand-in computes
//! the byte-identical response the dead shard would have produced.
//! Down links redial on a sweep-counted backoff (no wall clock).

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use oa_fault::{Decision, Faults, Site};
use oa_serve::wire_kinds::{OVERLOADED, UNAVAILABLE};
use oa_serve::{error_response, Json};

use crate::frame;
use crate::net::{Acceptor, Conn, IdleBackoff};
use crate::ring::{HashRing, DEFAULT_VNODES};

/// Router construction parameters.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Shard backend addresses (texts, re-resolved on every dial).
    pub shards: Vec<String>,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: u32,
    /// Maximum client requests in flight; beyond it new requests are
    /// shed with `{"error":{"kind":"overloaded"}}`.
    pub max_inflight: usize,
    /// Failover re-dispatches per sub-request before it fails with
    /// `{"error":{"kind":"unavailable"}}`.
    pub max_resend: u32,
    /// Sweeps between redial attempts to a down shard.
    pub reconnect_sweeps: u32,
    /// Fault plan ([`Site::ShardDrop`], [`Site::RouterWrite`]).
    pub faults: Faults,
}

impl RouterConfig {
    /// Loopback defaults over the given shard addresses.
    pub fn loopback(shards: Vec<String>) -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards,
            vnodes: DEFAULT_VNODES,
            max_inflight: 1024,
            max_resend: 8,
            reconnect_sweeps: 64,
            faults: Faults::none(),
        }
    }
}

/// One shard link: address text plus the (re)dialable connection.
#[derive(Debug)]
struct ShardLink {
    addr: String,
    conn: Option<Conn>,
    /// Sweeps since the link went down (paces redials).
    down_sweeps: u32,
    /// True once a dial ever succeeded *or* never attempted — controls
    /// whether `shard_map` reports the backend as up.
    up: bool,
}

/// What a sub-request's completion feeds.
#[derive(Debug)]
enum PendingKind {
    /// One forwarded line; the response passes through id-rewritten.
    Single,
    /// A split batch: part `p` covers original item indices
    /// `item_of_part[p]`; answered when every slot is filled.
    Batch {
        item_of_part: Vec<Vec<usize>>,
        slots: Vec<Option<String>>,
    },
    /// A stats broadcast: one part per shard, summed when complete.
    Stats {
        parts: Vec<Option<String>>,
        breakdown: bool,
    },
}

/// One in-flight client request.
#[derive(Debug)]
struct Pending {
    client: u64,
    /// Canonical id text to echo (the `Json` re-encoding a shard would
    /// itself produce).
    id_txt: String,
    kind: PendingKind,
    outstanding: usize,
    /// Answered early (failure path); late parts are discarded.
    done: bool,
}

/// One forwarded wire line awaiting its shard response.
#[derive(Debug)]
struct SubRequest {
    req: u64,
    part: usize,
    /// The forwarded line (sub-id already baked in) — kept for blind
    /// resend on failover.
    line: String,
    /// Ring key; `None` pins the part to its shard (stats broadcast).
    key: Option<u64>,
    shard: u32,
    resends: u32,
}

/// Everything the event loop owns.
pub struct RouterState {
    acceptor: Acceptor,
    ring: HashRing,
    faults: Faults,
    max_inflight: usize,
    max_resend: u32,
    reconnect_sweeps: u32,
    shards: Vec<ShardLink>,
    clients: BTreeMap<u64, Conn>,
    pending: BTreeMap<u64, Pending>,
    subs: BTreeMap<u64, SubRequest>,
    next_client: u64,
    next_req: u64,
    next_sub: u64,
    /// Pre-computed keys-per-shard census for `shard_map`.
    census: Vec<u64>,
}

/// How one declared op travels through the fabric. The classes mirror
/// the `route=` attribute in `crates/serve/protocol.spec`; the
/// `oa_lint wire` pass extracts [`route_of`] and cross-checks the two
/// tables in both directions (DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    /// Answered by the router itself; no shard is consulted.
    Local,
    /// Forwarded whole to one shard, keyed by topology id (falling
    /// back to a hash of the raw line).
    Key,
    /// Split per item and scattered across shards; the responses are
    /// spliced back into one frame.
    Scatter,
    /// Sent to every shard; the responses are merged.
    Broadcast,
    /// Forwarded whole to the one shard that owns the session id —
    /// sticky pinning, the anti-fork obligation of DESIGN.md §13.
    Session,
    /// Not a declared op: forwarded whole so a shard can answer with
    /// its canonical error bytes.
    Unknown,
}

/// The routing table: one arm per declared op. Client dispatch is
/// driven off this classification, so the match below *is* the
/// fabric's op coverage — adding an op to oa-serve without extending
/// it fails the `wire_router_coverage` lint rule, which is exactly how
/// a session fork is born.
fn route_of(op: &str) -> Route {
    match op {
        "shard_map" => Route::Local,
        "eval" => Route::Key,
        "size_opt" => Route::Key,
        "eval_batch" => Route::Scatter,
        "stats" => Route::Broadcast,
        "open_session" | "step" | "session_stats" | "close_session" => Route::Session,
        _ => Route::Unknown,
    }
}

/// A running router. Dropping it (or [`Router::shutdown`]) stops the
/// event loop; established connections are closed with it.
pub struct Router {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    driver: Option<JoinHandle<()>>,
}

impl Router {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the event loop and joins it.
    pub fn shutdown(mut self) {
        self.stop_loop();
    }

    /// Blocks until the event loop exits (daemon mode: forever).
    pub fn join(mut self) {
        if let Some(handle) = self.driver.take() {
            let _ = handle.join();
        }
    }

    fn stop_loop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.driver.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.stop_loop();
    }
}

/// Binds the listener, builds the ring, and starts the event loop on
/// its own thread. Shard links dial lazily — a backend may come up
/// after the router.
///
/// # Errors
///
/// Bind failures, an empty shard list, or thread-spawn failures.
pub fn start(config: RouterConfig) -> std::io::Result<Router> {
    if config.shards.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "a router needs at least one shard backend",
        ));
    }
    let acceptor = Acceptor::bind(&config.addr)?;
    let addr = acceptor.addr()?;
    let ring = HashRing::new(config.shards.len() as u32, config.vnodes);
    let census = ring.census(oa_circuit::DESIGN_SPACE_SIZE as u64);
    let mut state = RouterState {
        acceptor,
        ring,
        faults: config.faults,
        max_inflight: config.max_inflight,
        max_resend: config.max_resend,
        reconnect_sweeps: config.reconnect_sweeps.max(1),
        shards: config
            .shards
            .into_iter()
            .map(|addr| ShardLink {
                addr,
                conn: None,
                down_sweeps: u32::MAX, // first use dials immediately
                up: false,
            })
            .collect(),
        clients: BTreeMap::new(),
        pending: BTreeMap::new(),
        subs: BTreeMap::new(),
        next_client: 0,
        next_req: 0,
        next_sub: 0,
        census,
    };
    let stop = Arc::new(AtomicBool::new(false));
    let driver = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("oa-router-loop".to_owned())
            .spawn(move || event_loop(&mut state, &stop))?
    };
    Ok(Router {
        addr,
        stop,
        driver: Some(driver),
    })
}

/// The router's single-threaded nonblocking event loop: accept, sweep
/// clients, dispatch, sweep shards, merge, pace. Runs until `stop`.
/// Registered as a panic-reachability entry point in `oa-analyze`.
pub fn event_loop(state: &mut RouterState, stop: &AtomicBool) {
    let mut backoff = IdleBackoff::default();
    while !stop.load(Ordering::SeqCst) {
        let mut progressed = false;

        // New clients.
        for conn in state.acceptor.accept_all() {
            let id = state.next_client;
            state.next_client += 1;
            state.clients.insert(id, conn);
            progressed = true;
        }

        // Client reads → requests.
        let client_ids: Vec<u64> = state.clients.keys().copied().collect();
        for client in client_ids {
            let Some(conn) = state.clients.get_mut(&client) else {
                continue;
            };
            let outcome = conn.sweep();
            progressed |= outcome.progressed;
            for line in outcome.frames {
                progressed = true;
                state.handle_client_line(client, &line);
            }
            if outcome.closed {
                state.clients.remove(&client);
            }
        }

        // Shard reads → responses; closed links fail over.
        for shard in 0..state.shards.len() as u32 {
            let Some(conn) = state
                .shards
                .get_mut(shard as usize)
                .and_then(|link| link.conn.as_mut())
            else {
                continue;
            };
            let outcome = conn.sweep();
            progressed |= outcome.progressed;
            for frame_text in outcome.frames {
                progressed = true;
                state.handle_shard_frame(&frame_text);
            }
            if outcome.closed {
                state.shard_down(shard);
            }
        }

        // Redial pacing for down links.
        for link in state.shards.iter_mut() {
            if link.conn.is_some() {
                continue;
            }
            link.down_sweeps = link.down_sweeps.saturating_add(1);
            if link.down_sweeps >= state.reconnect_sweeps {
                link.down_sweeps = 0;
                if let Ok(conn) = Conn::dial(&link.addr) {
                    link.conn = Some(conn);
                    link.up = true;
                    progressed = true;
                }
            }
        }

        backoff.pace(progressed);
    }
}

impl RouterState {
    /// The health view the ring-walk excludes: a shard is down when it
    /// has no live connection.
    fn down_view(&self) -> Vec<bool> {
        self.shards.iter().map(|s| s.conn.is_none()).collect()
    }

    /// Ensures a live connection to `shard`, dialing on demand. The
    /// sweep-paced redial governs only idle background reconnects; a
    /// dispatch that needs the link dials immediately (loopback/LAN
    /// refusals are fast, and a healthy backend that just lost its link
    /// to an injected drop must be reusable at once).
    fn ensure_link(&mut self, shard: u32) -> bool {
        let Some(link) = self.shards.get_mut(shard as usize) else {
            return false;
        };
        if link.conn.is_some() {
            return true;
        }
        link.down_sweeps = 0;
        match Conn::dial(&link.addr) {
            Ok(conn) => {
                link.conn = Some(conn);
                link.up = true;
                true
            }
            Err(_) => false,
        }
    }

    /// Queues a response frame to a client (newline appended), through
    /// the [`Site::RouterWrite`] fault point.
    fn respond(&mut self, client: u64, frame: &str) {
        if let Decision::Stall { millis } =
            self.faults.decide(Site::RouterWrite, frame.len() as u64)
        {
            // lint: allow(nonblocking_event_loop, deliberate fault-injected stall; inert unless a chaos plan arms Site::RouterWrite)
            std::thread::sleep(Duration::from_millis(millis));
        }
        if let Some(conn) = self.clients.get_mut(&client) {
            conn.queue(frame.as_bytes());
            conn.queue(b"\n");
        }
    }

    /// A router-originated typed failure frame (never produced by a
    /// shard): `{"id":ID,"ok":false,"error":{"kind":KIND}}`.
    fn typed_failure(id_txt: &str, kind: &str) -> String {
        format!("{{\"id\":{id_txt},\"ok\":false,\"error\":{{\"kind\":\"{kind}\"}}}}")
    }

    /// Deterministic fallback ring key for requests without a routable
    /// topology: FNV-1a over the raw line.
    fn line_key(line: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in line.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    fn topology_key(value: Option<&Json>) -> Option<u64> {
        let code = value?.as_u64()?;
        (code < oa_circuit::DESIGN_SPACE_SIZE as u64).then_some(code)
    }

    /// One client request line → local answer, single forward, batch
    /// scatter, or stats broadcast.
    fn handle_client_line(&mut self, client: u64, line: &str) {
        let request = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                // Same renderer, same message, same bytes as a shard.
                let frame = error_response(&Json::Null, &format!("bad request JSON: {e}"));
                self.respond(client, &frame);
                return;
            }
        };
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        let id_txt = id.encode().unwrap_or_else(|_| "null".to_owned());

        if self.pending.len() >= self.max_inflight {
            let frame = Self::typed_failure(&id_txt, OVERLOADED);
            self.respond(client, &frame);
            return;
        }

        let op = request.get("op").and_then(Json::as_str).unwrap_or("");
        match route_of(op) {
            Route::Local => {
                let frame = self.shard_map_response(&id_txt);
                self.respond(client, &frame);
            }
            Route::Broadcast => self.broadcast_stats(client, line, &request, id_txt),
            Route::Scatter => self.scatter_batch(client, line, &request, id_txt),
            Route::Session => {
                // Sticky session pinning: the session id is the ring
                // key, so every op of one session lands on the same
                // shard — the one holding its BO state. The fallback
                // (no usable `session` field) routes by line so the
                // shard can answer with its canonical error bytes.
                let key = request
                    .get("session")
                    .and_then(Json::as_u64)
                    .unwrap_or_else(|| Self::line_key(line));
                self.forward_single(client, line, key, id_txt);
            }
            Route::Key | Route::Unknown => {
                // eval, size_opt, and every malformed-but-parseable
                // request a shard must count and answer.
                let key = Self::topology_key(request.get("topology"))
                    .unwrap_or_else(|| Self::line_key(line));
                self.forward_single(client, line, key, id_txt);
            }
        }
    }

    /// Forwards one whole line (id rewritten) to the key's shard.
    fn forward_single(&mut self, client: u64, line: &str, key: u64, id_txt: String) {
        let sub_id = self.next_sub;
        let Some(wire) = frame::rewrite_request_id(line, sub_id) else {
            // Parsed JSON but not an object: answer as a shard would.
            let frame = error_response(&Json::Null, "missing string field 'op'");
            self.respond(client, &frame);
            return;
        };
        self.next_sub += 1;
        let req = self.next_req;
        self.next_req += 1;
        self.pending.insert(
            req,
            Pending {
                client,
                id_txt,
                kind: PendingKind::Single,
                outstanding: 1,
                done: false,
            },
        );
        self.subs.insert(
            sub_id,
            SubRequest {
                req,
                part: 0,
                line: wire,
                key: Some(key),
                shard: 0, // assigned by dispatch
                resends: 0,
            },
        );
        self.dispatch(sub_id);
    }

    /// Splits an `eval_batch` across the shards its items live on. A
    /// batch whose items share one shard forwards whole (byte-identical
    /// passthrough, counted once like a single node would).
    fn scatter_batch(&mut self, client: u64, line: &str, request: &Json, id_txt: String) {
        let ranges = frame::split_array(line, "items");
        let spec = frame::top_level_value(line, "spec");
        let items = request.get("items").and_then(Json::as_arr);
        let (Some(ranges), Some(spec), Some(items)) = (ranges, spec, items) else {
            // Structurally off: a shard produces the canonical error.
            let key = Self::line_key(line);
            self.forward_single(client, line, key, id_txt);
            return;
        };
        let down = self.down_view();
        let keys: Vec<Option<u32>> = items
            .iter()
            .map(|item| {
                Self::topology_key(item.get("topology"))
                    .and_then(|k| self.ring.route_excluding(k, &down))
            })
            .collect();
        // Unroutable items (bad topology — the shard answers them with
        // a typed per-item error) attach to the batch's default shard.
        let default_shard = keys
            .iter()
            .flatten()
            .copied()
            .next()
            .or_else(|| self.ring.route_excluding(Self::line_key(line), &down));
        let Some(default_shard) = default_shard else {
            let frame = Self::typed_failure(&id_txt, UNAVAILABLE);
            self.respond(client, &frame);
            return;
        };
        let mut groups: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, key) in keys.iter().enumerate() {
            groups
                .entry(key.unwrap_or(default_shard))
                .or_default()
                .push(i);
        }
        if groups.len() <= 1 {
            // One shard owns every item: whole-line passthrough keeps
            // the response — and the shard's endpoint counters —
            // byte-identical to a single node.
            let key = items
                .iter()
                .find_map(|item| Self::topology_key(item.get("topology")))
                .unwrap_or_else(|| Self::line_key(line));
            self.forward_single(client, line, key, id_txt);
            return;
        }

        let req = self.next_req;
        self.next_req += 1;
        // The range came from the scanner, so it is always in bounds.
        let spec_raw = line.get(spec).unwrap_or_default();
        let mut item_of_part = Vec::with_capacity(groups.len());
        let mut sub_ids = Vec::with_capacity(groups.len());
        for (part, (_shard, indices)) in groups.into_iter().enumerate() {
            let sub_id = self.next_sub;
            self.next_sub += 1;
            let joined: Vec<&str> = indices
                .iter()
                .filter_map(|&i| ranges.get(i).and_then(|r| line.get(r.clone())))
                .collect();
            let wire = format!(
                "{{\"id\":{sub_id},\"op\":\"eval_batch\",\"spec\":{spec_raw},\"items\":[{}]}}",
                joined.join(",")
            );
            // Route the sub-batch by its first item's key so failover
            // re-walks the same ring neighborhood.
            let key = indices
                .iter()
                .find_map(|&i| Self::topology_key(items.get(i)?.get("topology")))
                .unwrap_or_else(|| Self::line_key(&wire));
            self.subs.insert(
                sub_id,
                SubRequest {
                    req,
                    part,
                    line: wire,
                    key: Some(key),
                    shard: 0,
                    resends: 0,
                },
            );
            item_of_part.push(indices);
            sub_ids.push(sub_id);
        }
        self.pending.insert(
            req,
            Pending {
                client,
                id_txt,
                kind: PendingKind::Batch {
                    item_of_part,
                    slots: vec![None; items.len()],
                },
                outstanding: sub_ids.len(),
                done: false,
            },
        );
        for sub_id in sub_ids {
            self.dispatch(sub_id);
        }
    }

    /// Broadcasts a stats request to every shard; parts sum on arrival.
    fn broadcast_stats(&mut self, client: u64, line: &str, request: &Json, id_txt: String) {
        let breakdown = request.get("shards") == Some(&Json::Bool(true));
        let shard_count = self.shards.len();
        let req = self.next_req;
        self.next_req += 1;
        let mut sub_ids = Vec::with_capacity(shard_count);
        for part in 0..shard_count {
            let sub_id = self.next_sub;
            self.next_sub += 1;
            let Some(wire) = frame::rewrite_request_id(line, sub_id) else {
                let frame = error_response(&Json::Null, "missing string field 'op'");
                self.respond(client, &frame);
                return;
            };
            self.subs.insert(
                sub_id,
                SubRequest {
                    req,
                    part,
                    line: wire,
                    key: None, // pinned: a shard's stats are its own
                    shard: part as u32,
                    resends: 0,
                },
            );
            sub_ids.push(sub_id);
        }
        self.pending.insert(
            req,
            Pending {
                client,
                id_txt,
                kind: PendingKind::Stats {
                    parts: vec![None; shard_count],
                    breakdown,
                },
                outstanding: shard_count,
                done: false,
            },
        );
        for sub_id in sub_ids {
            self.dispatch(sub_id);
        }
    }

    /// Sends one sub-request to its shard, walking the ring past down
    /// links (pinned parts fail instead). Consumes the resend budget.
    fn dispatch(&mut self, sub_id: u64) {
        loop {
            let Some(sub) = self.subs.get(&sub_id) else {
                return;
            };
            // Injected shard-link loss right before forwarding: the
            // link goes down and every sub on it (this one included)
            // re-routes — the chaos harness's failover storm.
            let target = match sub.key {
                None => sub.shard,
                Some(key) => {
                    let down = self.down_view();
                    match self.ring.route_excluding(key, &down) {
                        Some(s) => s,
                        None => {
                            // Every link down: try the home shard once
                            // through ensure_link (it may just need a
                            // dial), else fail.
                            match self.ring.route(key) {
                                Some(s) => s,
                                None => {
                                    self.fail_sub(sub_id, UNAVAILABLE);
                                    return;
                                }
                            }
                        }
                    }
                }
            };
            if let Decision::DropConn = self.faults.decide(Site::ShardDrop, sub_id) {
                if self
                    .shards
                    .get(target as usize)
                    .is_some_and(|link| link.conn.is_some())
                {
                    self.shard_down(target);
                    // shard_down re-queued this sub via dispatch unless
                    // budget ran out; either way this call is done.
                    return;
                }
            }
            if !self.ensure_link(target) {
                if !self.consume_resend(sub_id) {
                    return;
                }
                // Pinned parts cannot move; fail now.
                if self.subs.get(&sub_id).is_some_and(|s| s.key.is_none()) {
                    self.fail_sub(sub_id, UNAVAILABLE);
                    return;
                }
                // Routable parts re-walk the ring next iteration; if
                // no other shard is up either, the budget bounds us.
                continue;
            }
            let Some(sub) = self.subs.get_mut(&sub_id) else {
                return;
            };
            sub.shard = target;
            let line = sub.line.clone();
            if let Some(conn) = self
                .shards
                .get_mut(target as usize)
                .and_then(|link| link.conn.as_mut())
            {
                conn.queue(line.as_bytes());
                conn.queue(b"\n");
            }
            return;
        }
    }

    /// Burns one resend; fails the sub with `unavailable` when the
    /// budget is gone. Returns whether the sub may be retried.
    fn consume_resend(&mut self, sub_id: u64) -> bool {
        let Some(sub) = self.subs.get_mut(&sub_id) else {
            return false;
        };
        sub.resends += 1;
        if sub.resends > self.max_resend {
            self.fail_sub(sub_id, UNAVAILABLE);
            return false;
        }
        true
    }

    /// Fails one sub-request's whole client request with a typed frame.
    fn fail_sub(&mut self, sub_id: u64, kind: &str) {
        let Some(sub) = self.subs.remove(&sub_id) else {
            return;
        };
        let Some(pending) = self.pending.get_mut(&sub.req) else {
            return;
        };
        pending.outstanding = pending.outstanding.saturating_sub(1);
        let finished = pending.outstanding == 0;
        let was_done = pending.done;
        pending.done = true;
        let client = pending.client;
        let id_txt = pending.id_txt.clone();
        if finished {
            self.pending.remove(&sub.req);
        }
        if !was_done {
            let frame = Self::typed_failure(&id_txt, kind);
            self.respond(client, &frame);
        }
    }

    /// Tears a shard link down and re-dispatches everything in flight
    /// on it.
    fn shard_down(&mut self, shard: u32) {
        if let Some(link) = self.shards.get_mut(shard as usize) {
            link.conn = None;
            link.down_sweeps = 0;
        }
        let orphans: Vec<u64> = self
            .subs
            .iter()
            .filter(|(_, s)| s.shard == shard)
            .map(|(&id, _)| id)
            .collect();
        for sub_id in orphans {
            let pinned = self.subs.get(&sub_id).is_some_and(|s| s.key.is_none());
            if pinned {
                // A stats part is this shard's own state; no stand-in
                // can answer for it.
                self.fail_sub(sub_id, UNAVAILABLE);
            } else if self.consume_resend(sub_id) {
                self.dispatch(sub_id);
            }
        }
    }

    /// One frame from a shard: match it to its sub-request and feed the
    /// pending scatter/gather state.
    fn handle_shard_frame(&mut self, text: &str) {
        let Some(split) = frame::split_response(text) else {
            return; // protocol violation from a backend; drop the frame
        };
        let Ok(sub_id) = split.id.parse::<u64>() else {
            return;
        };
        let Some(sub) = self.subs.remove(&sub_id) else {
            return; // late duplicate after a failover resend
        };
        // Splices the original request id over the shard's sub-id;
        // every other byte stays the shard's own.
        let splice = |id_txt: &str| {
            // split_response verified the prefix, so the offset holds.
            let tail = text
                .get("{\"id\":".len() + split.id.len()..)
                .unwrap_or_default();
            format!("{{\"id\":{id_txt}{tail}")
        };
        let (client, response, finished) = {
            let Some(pending) = self.pending.get_mut(&sub.req) else {
                return;
            };
            pending.outstanding = pending.outstanding.saturating_sub(1);
            let finished = pending.outstanding == 0;
            let client = pending.client;
            if pending.done {
                (client, None, finished)
            } else {
                let id_txt = pending.id_txt.clone();
                match &mut pending.kind {
                    PendingKind::Single => (client, Some(splice(&id_txt)), finished),
                    PendingKind::Batch {
                        item_of_part,
                        slots,
                    } => {
                        if !split.ok {
                            // A batch-level shard error (single-node
                            // shape): propagate it for the whole batch.
                            pending.done = true;
                            (client, Some(splice(&id_txt)), finished)
                        } else {
                            let indices = item_of_part.get(sub.part).cloned().unwrap_or_default();
                            let parts =
                                frame::split_array(split.payload, "items").unwrap_or_default();
                            if parts.len() != indices.len() {
                                pending.done = true;
                                let frame = format!(
                                    "{{\"id\":{id_txt},\"ok\":false,\"error\":\
                                     \"shard returned a short batch (fabric protocol violation)\"}}"
                                );
                                (client, Some(frame), finished)
                            } else {
                                for (slot, range) in indices.into_iter().zip(parts) {
                                    if let (Some(out), Some(part)) =
                                        (slots.get_mut(slot), split.payload.get(range))
                                    {
                                        *out = Some(part.to_owned());
                                    }
                                }
                                if finished {
                                    let items: Vec<String> = slots
                                        .iter()
                                        .map(|s| s.clone().unwrap_or_else(|| "null".to_owned()))
                                        .collect();
                                    let frame = format!(
                                        "{{\"id\":{id_txt},\"ok\":true,\"result\":\
                                         {{\"n\":{},\"items\":[{}]}}}}",
                                        items.len(),
                                        items.join(",")
                                    );
                                    (client, Some(frame), true)
                                } else {
                                    (client, None, false)
                                }
                            }
                        }
                    }
                    PendingKind::Stats { parts, breakdown } => {
                        if !split.ok {
                            pending.done = true;
                            (client, Some(splice(&id_txt)), finished)
                        } else {
                            if let Some(slot) = parts.get_mut(sub.part) {
                                *slot = Some(split.payload.to_owned());
                            }
                            if finished {
                                let texts: Vec<String> = parts.iter().flatten().cloned().collect();
                                let frame = merge_stats(&id_txt, &texts, *breakdown)
                                    .unwrap_or_else(|| Self::typed_failure(&id_txt, UNAVAILABLE));
                                (client, Some(frame), true)
                            } else {
                                (client, None, false)
                            }
                        }
                    }
                }
            }
        };
        if finished {
            self.pending.remove(&sub.req);
        }
        if let Some(frame) = response {
            self.respond(client, &frame);
        }
    }

    /// The local `shard_map` answer: ring parameters, per-backend
    /// ownership census, and link health.
    fn shard_map_response(&self, id_txt: &str) -> String {
        let backends: Vec<Json> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, link)| {
                Json::Obj(vec![
                    ("addr".into(), Json::str(link.addr.clone())),
                    (
                        "owned".into(),
                        Json::num(self.census.get(i).copied().unwrap_or(0) as f64),
                    ),
                    ("up".into(), Json::Bool(link.conn.is_some())),
                ])
            })
            .collect();
        let result = Json::Obj(vec![
            ("shards".into(), Json::num(self.shards.len() as f64)),
            ("vnodes".into(), Json::num(self.ring.vnodes() as f64)),
            (
                "space".into(),
                Json::num(oa_circuit::DESIGN_SPACE_SIZE as f64),
            ),
            ("backends".into(), Json::Arr(backends)),
        ]);
        let result = result
            .encode()
            // lint: allow(panic, the shard map holds counts and strings; never non-finite)
            .expect("shard map encodes");
        format!("{{\"id\":{id_txt},\"ok\":true,\"result\":{result}}}")
    }
}

/// Sums per-shard stats objects into the single-fabric view: numbers
/// add field-wise (recursively, shapes being identical by protocol),
/// the per-shard `shard` identity field is dropped, and with
/// `breakdown` the raw per-shard objects ride along under `"shards"`.
/// Returns `None` when a part fails to parse.
fn merge_stats(id_txt: &str, parts: &[String], breakdown: bool) -> Option<String> {
    let parsed: Vec<Json> = parts
        .iter()
        .map(|p| Json::parse(p).ok())
        .collect::<Option<_>>()?;
    let mut merged = sum_json(&parsed)?;
    if breakdown {
        if let Json::Obj(fields) = &mut merged {
            fields.push(("shards".into(), Json::Arr(parsed.clone())));
        }
    }
    let text = merged.encode().ok()?;
    Some(format!("{{\"id\":{id_txt},\"ok\":true,\"result\":{text}}}"))
}

/// Field-wise recursive sum over same-shaped JSON values. Objects merge
/// by the first part's key order (`shard` skipped), numbers add, and
/// anything else keeps the first part's value.
fn sum_json(parts: &[Json]) -> Option<Json> {
    let first = parts.first()?;
    match first {
        Json::Num(_) => {
            let mut total = 0.0;
            for p in parts {
                total += p.as_f64()?;
            }
            Some(Json::Num(total))
        }
        Json::Obj(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (key, _) in fields {
                if key == "shard" {
                    continue;
                }
                let slice: Vec<Json> = parts.iter().filter_map(|p| p.get(key).cloned()).collect();
                out.push((key.clone(), sum_json(&slice)?));
            }
            Some(Json::Obj(out))
        }
        other => Some(other.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_failure_frames_have_the_documented_shape() {
        assert_eq!(
            RouterState::typed_failure("7", "overloaded"),
            r#"{"id":7,"ok":false,"error":{"kind":"overloaded"}}"#
        );
        assert_eq!(
            RouterState::typed_failure("null", "unavailable"),
            r#"{"id":null,"ok":false,"error":{"kind":"unavailable"}}"#
        );
    }

    #[test]
    fn line_key_is_deterministic_and_spreads() {
        let a = RouterState::line_key("{\"op\":\"stats\"}");
        let b = RouterState::line_key("{\"op\":\"stats\"}");
        let c = RouterState::line_key("{\"op\":\"stats\" }");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sum_json_adds_numbers_and_drops_shard_identity() {
        let a =
            Json::parse(r#"{"sims":2,"store":{"hits":1},"shard":{"index":0,"count":2}}"#).unwrap();
        let b =
            Json::parse(r#"{"sims":3,"store":{"hits":4},"shard":{"index":1,"count":2}}"#).unwrap();
        let merged = sum_json(&[a, b]).unwrap();
        assert_eq!(merged.encode().unwrap(), r#"{"sims":5,"store":{"hits":5}}"#);
    }

    #[test]
    fn merge_stats_appends_breakdown_when_asked() {
        let parts = vec![r#"{"sims":1}"#.to_owned(), r#"{"sims":2}"#.to_owned()];
        let plain = merge_stats("9", &parts, false).unwrap();
        assert_eq!(plain, r#"{"id":9,"ok":true,"result":{"sims":3}}"#);
        let detailed = merge_stats("9", &parts, true).unwrap();
        assert_eq!(
            detailed,
            r#"{"id":9,"ok":true,"result":{"sims":3,"shards":[{"sims":1},{"sims":2}]}}"#
        );
    }
}
