//! Seeded fabric chaos trials: a shard is killed and restarted
//! mid-workload while the router runs a seeded storm of link drops and
//! write stalls, and the client-visible responses must stay
//! byte-identical to a fault-free fabric.
//!
//! The trial shape mirrors `oa_serve::chaos`: the same workload runs
//! twice — once on a fault-free two-shard fabric (the baseline), once on
//! a fabric whose *router* runs [`FaultConfig::router_storm`]
//! (injected [`oa_fault::Site::ShardDrop`] link loss, [`oa_fault::Site::RouterWrite`]
//! stalls) while shard 0's process is additionally killed outright
//! mid-corpus ([`oa_serve::Server::kill`] severs its connections) and restarted on
//! the same port over the same store. Every disruption is handled by the
//! production paths: ring-walk failover with blind resends (safe —
//! endpoints are deterministic and store-backed), on-demand redial, and
//! the client's reconnect/backoff.
//!
//! On replay: the fault *schedule* is a pure function of the seed, and
//! the trial reports its decision-trace hash for forensics. Unlike the
//! single-node serve trial, the hash is not asserted equal across runs —
//! a real process kill races the event loop's EOF detection, so the
//! *number* of decisions consulted can differ run to run even though
//! every decision sequence is seed-determined. The bar that matters —
//! and the one asserted — is byte-identity of what clients saw.
//!
//! The `oa-chaos` binary drives these over the pinned corpus in
//! `tests/seeds/chaos_router.txt`.

use std::io;
use std::path::Path;
use std::time::Duration;

use oa_circuit::{ParamSpace, Topology};
use oa_fault::{FaultConfig, FaultStats, Faults, RetryPolicy};
use oa_serve::{request, serve, Client, ClientConfig, Server, SessionDriver};

use crate::fabric::{shard_config, Fabric};
use crate::ring::{HashRing, DEFAULT_VNODES};

/// Shards in every trial fabric.
const TRIAL_SHARDS: u32 = 2;

/// Requests in the trial workload.
const WORKLOAD_EVALS: usize = 12;

/// Attempts to rebind the killed shard's port on restart (the dead
/// listener's socket lingers briefly on some kernels).
const MAX_REBIND_ATTEMPTS: usize = 50;

/// The client profile for the faulty run: patient enough to ride out a
/// router write stall plus a shard failover, aggressive enough to keep
/// trials fast.
fn trial_client_config() -> ClientConfig {
    ClientConfig {
        retry: RetryPolicy {
            max_attempts: 12,
            base_millis: 2,
            cap_millis: 20,
        },
        timeout_millis: Some(2_000),
    }
}

/// The outcome of one seeded router trial.
#[derive(Debug, Clone)]
pub struct RouterTrial {
    /// The seed the router's fault plan ran under.
    pub seed: u64,
    /// The request lines, in issue order (paired with `responses` —
    /// protocol-conformance replays feed on the pairs).
    pub requests: Vec<String>,
    /// Responses from the faulty fabric, in request order.
    pub responses: Vec<String>,
    /// Whether every response byte-matches the fault-free baseline —
    /// the trial's pass/fail verdict.
    pub matches_baseline: bool,
    /// Hash of the recorded decision trace (forensics; see the module
    /// docs for why this is not a cross-run invariant here).
    pub trace_hash: u64,
    /// Decision counters.
    pub stats: FaultStats,
}

/// The trial workload: evals across topologies spread over both shards,
/// plus two `eval_batch` lines (one early, one after the kill point) so
/// scatter/merge is exercised on both sides of the restart. No `stats`
/// lines — their counters depend on retry counts, not just the store,
/// so they are not byte-deterministic under faults.
fn trial_requests(seed: u64) -> Vec<String> {
    let mut lines = Vec::new();
    let mut items = Vec::new();
    for i in 0..WORKLOAD_EVALS {
        let index = ((seed
            .wrapping_mul(2_654_435_761)
            .wrapping_add(i as u64 * 977)) as usize)
            % oa_circuit::DESIGN_SPACE_SIZE;
        let t = Topology::from_index(index).unwrap_or_else(|_| Topology::bare_cascade());
        let dim = ParamSpace::for_topology(&t).dim();
        let x: Vec<f64> = (0..dim)
            .map(|j| 0.2 + 0.6 * (j as f64) / dim.max(1) as f64)
            .collect();
        lines.push(request::eval(i as u64, "S-1", t.index(), &x));
        if items.len() < 4 {
            items.push((t.index(), x));
        }
    }
    lines.insert(3, request::eval_batch(90, "S-1", &items));
    lines.push(request::eval_batch(91, "S-1", &items));
    lines.push(request::size_opt(92, "S-1", 0, seed ^ 0x5EED, 4, 6));
    lines
}

/// Restarts a killed shard on its old (now concrete) address over the
/// same store, retrying the bind while the dead listener drains.
fn restart_shard(addr: &str, store_dir: &Path, index: u32) -> io::Result<Server> {
    let mut last = None;
    for _ in 0..MAX_REBIND_ATTEMPTS {
        match serve(shard_config(
            addr,
            store_dir,
            index,
            TRIAL_SHARDS,
            Faults::none(),
        )) {
            Ok(server) => return Ok(server),
            Err(e) => last = Some(e),
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    Err(last.unwrap_or_else(|| io::Error::other("rebind retries exhausted")))
}

/// Runs one seeded router trial under `dir` (created; caller removes).
///
/// # Errors
///
/// Bind/store failures outside the injected schedule, or a request
/// still failing after the client's bounded retry budget.
pub fn router_trial(dir: &Path, seed: u64) -> io::Result<RouterTrial> {
    router_trial_opts(dir, seed, true)
}

/// [`router_trial`] with the mid-corpus shard kill made optional.
///
/// With `kill: false` the trial is the pure router storm — no process
/// death, so the event loop consults the fault schedule the same number
/// of times every run and `trace_hash` *is* a cross-run invariant
/// (asserted in tests; the kill variant only gets byte-identity, see
/// the module docs).
///
/// # Errors
///
/// Bind/store failures outside the injected schedule, or a request
/// still failing after the client's bounded retry budget.
pub fn router_trial_opts(dir: &Path, seed: u64, kill: bool) -> io::Result<RouterTrial> {
    let requests = trial_requests(seed);

    // Baseline: fault-free fabric, plain client, serial requests.
    let baseline_fabric = Fabric::spawn(TRIAL_SHARDS, &dir.join("baseline"), |_| {})?;
    let mut base_client = Client::connect(baseline_fabric.router.addr())?;
    let mut baseline = Vec::with_capacity(requests.len());
    for line in &requests {
        baseline.push(base_client.request(line)?);
    }
    drop(base_client);
    baseline_fabric.shutdown();

    // Faulty run: router storm + a real shard kill/restart mid-corpus.
    let faults = Faults::seeded(seed, FaultConfig::router_storm());
    let store_dir = dir.join("chaos");
    let mut fabric = Fabric::spawn(TRIAL_SHARDS, &store_dir, |config| {
        config.faults = faults.clone();
    })?;
    let kill_at = requests.len() / 2;
    let mut client = Client::connect_with(fabric.router.addr(), trial_client_config())?;
    let mut responses = Vec::with_capacity(requests.len());
    for (i, line) in requests.iter().enumerate() {
        if kill && i == kill_at {
            // Kill shard 0 between requests: its router link and store
            // go dark at once; in-flight state is empty (serial client)
            // so what this exercises is routing around the hole and the
            // rejoin after restart.
            let victim = fabric.shards.remove(0);
            let addr = fabric.shard_addrs[0].clone();
            victim.kill();
            let restarted = restart_shard(&addr, &store_dir, 0)?;
            fabric.shards.insert(0, restarted);
        }
        responses.push(client.request_with_retry(line)?);
    }
    drop(client);
    fabric.shutdown();

    let matches_baseline = responses == baseline;
    Ok(RouterTrial {
        seed,
        requests,
        responses,
        matches_baseline,
        trace_hash: faults.trace_hash(),
        stats: faults.stats(),
    })
}

/// Steps in the session trial workload.
const SESSION_STEPS: usize = 5;

/// The outcome of one seeded session chaos trial.
#[derive(Debug, Clone)]
pub struct SessionTrial {
    /// The seed the fault plans ran under.
    pub seed: u64,
    /// The logical request lines, in issue order (open, steps, stats,
    /// close — paired with `responses` for conformance replays).
    pub requests: Vec<String>,
    /// The session's logical response stream from the faulty fabric
    /// (open, steps, stats, close — after driver-side retries/replays).
    pub responses: Vec<String>,
    /// Whether every response byte-matches the fault-free baseline.
    pub matches_baseline: bool,
    /// Decision counters of the router-side storm.
    pub router_stats: FaultStats,
    /// Decision counters of the shard-side session storm.
    pub shard_stats: FaultStats,
}

/// The session workload: open, `SESSION_STEPS` steps, a `session_stats`
/// probe, close. Single-spec on purpose — warm-start scans the *local*
/// shard store, and a failover moves the session to a shard with a
/// different store, so only a warm-free session is shard-independent
/// (the documented deployment rule for sessions behind a fabric; see
/// DESIGN.md §13).
fn session_requests(session: u64, seed: u64) -> (String, Vec<String>, String, String) {
    let open = request::open_session(100, session, &["S-1"], seed, 2, 8, 2, 1);
    let steps = (0..SESSION_STEPS)
        .map(|i| request::step(101 + i as u64, session))
        .collect();
    let stats = request::session_stats(120, session);
    let close = request::close_session(121, session);
    (open, steps, stats, close)
}

/// Runs one seeded session chaos trial under `dir` (created; caller
/// removes): the same session workload runs on a fault-free fabric and
/// on a fabric whose router runs [`FaultConfig::router_storm`] and whose
/// shards run [`FaultConfig::session_storm`] (injected step failures),
/// while the shard that *owns* the session — computed from the same
/// consistent-hash ring the router routes by — is killed outright and
/// restarted mid-workload. The [`SessionDriver`] rides it out: injected
/// errors are resent, and the restarted (state-less) owner's
/// `unknown_session` answer triggers a replay of the recorded request
/// prefix, which the driver verifies frame-by-frame. The trial's verdict
/// is byte-identity of the logical response stream.
///
/// # Errors
///
/// Bind/store failures outside the injected schedule, an exhausted
/// driver budget, or a divergent replay.
pub fn session_trial(dir: &Path, seed: u64) -> io::Result<SessionTrial> {
    let session = 0x5E55_0000 ^ seed;
    let (open, steps, stats, close) = session_requests(session, seed);

    // Baseline: fault-free fabric, plain driver (no faults to absorb).
    let baseline_fabric = Fabric::spawn(TRIAL_SHARDS, &dir.join("baseline"), |_| {})?;
    let mut base_client = Client::connect(baseline_fabric.router.addr())?;
    let mut base_driver = SessionDriver::new();
    let mut baseline = Vec::new();
    baseline.push(base_driver.open(&mut base_client, &open)?);
    for line in &steps {
        baseline.push(base_driver.step(&mut base_client, line)?);
    }
    baseline.push(base_driver.call(&mut base_client, &stats)?);
    baseline.push(base_driver.call(&mut base_client, &close)?);
    drop(base_client);
    baseline_fabric.shutdown();

    // Faulty run: router storm + shard session storms + owner kill.
    let router_faults = Faults::seeded(seed, FaultConfig::router_storm());
    let shard_faults = Faults::seeded(seed ^ 0xF00D, FaultConfig::session_storm());
    let store_dir = dir.join("chaos");
    let mut fabric = {
        let shard_faults = shard_faults.clone();
        Fabric::spawn_with(
            TRIAL_SHARDS,
            &store_dir,
            |config| config.faults = router_faults.clone(),
            move |config| config.faults = shard_faults.clone(),
        )?
    };
    // The owner is where the router pins the session: ring-route of the
    // session id under the fabric's (default) ring parameters.
    let owner = HashRing::new(TRIAL_SHARDS, DEFAULT_VNODES)
        .route(session)
        .unwrap_or(0) as usize;

    let mut client = Client::connect_with(fabric.router.addr(), trial_client_config())?;
    let mut driver = SessionDriver::new();
    let mut responses = Vec::new();
    responses.push(driver.open(&mut client, &open)?);
    let kill_at = steps.len() / 2;
    for (i, line) in steps.iter().enumerate() {
        if i == kill_at {
            // Kill the session's owner between steps: its BO state dies
            // with it. The restarted instance answers `unknown_session`
            // and the driver replays the recorded prefix.
            let victim = fabric.shards.remove(owner);
            let addr = fabric.shard_addrs[owner].clone();
            victim.kill();
            let restarted = restart_shard(&addr, &store_dir, owner as u32)?;
            fabric.shards.insert(owner, restarted);
        }
        responses.push(driver.step(&mut client, line)?);
    }
    responses.push(driver.call(&mut client, &stats)?);
    responses.push(driver.call(&mut client, &close)?);
    drop(client);
    fabric.shutdown();

    let matches_baseline = responses == baseline;
    let mut requests = Vec::with_capacity(steps.len() + 3);
    requests.push(open);
    requests.extend(steps);
    requests.push(stats);
    requests.push(close);
    Ok(SessionTrial {
        seed,
        requests,
        responses,
        matches_baseline,
        router_stats: router_faults.stats(),
        shard_stats: shard_faults.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "oa_router_chaos_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn trial_requests_are_seed_deterministic() {
        assert_eq!(trial_requests(11), trial_requests(11));
        assert_ne!(trial_requests(11), trial_requests(12));
    }

    #[test]
    fn router_trial_survives_storm_and_shard_kill_byte_identically() {
        let dir = temp_dir("trial");
        let trial = router_trial(&dir, 42).unwrap();
        assert!(
            trial.matches_baseline,
            "faulty fabric diverged from baseline: {:?}",
            trial.responses
        );
        assert!(trial.stats.injected > 0, "storm must inject");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_kill_trial_trace_hash_is_a_cross_run_invariant() {
        // Without a process kill there is no EOF race: the event loop
        // consults the schedule identically every run, so the decision
        // trace (not just the bytes) must replay.
        let dir_a = temp_dir("nokill_a");
        let dir_b = temp_dir("nokill_b");
        let a = router_trial_opts(&dir_a, 7, false).unwrap();
        let b = router_trial_opts(&dir_b, 7, false).unwrap();
        assert!(a.matches_baseline, "{:?}", a.responses);
        assert!(b.matches_baseline, "{:?}", b.responses);
        assert_eq!(
            a.trace_hash, b.trace_hash,
            "decision trace diverged across runs"
        );
        assert_eq!(a.requests, b.requests);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }
}
