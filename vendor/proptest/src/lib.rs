//! Vendored, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of proptest 1.x that the workspace's property tests use: the
//! [`Strategy`] trait with [`Strategy::prop_map`], range strategies for
//! integers and floats, [`collection::vec`] / [`collection::hash_set`],
//! [`ProptestConfig::with_cases`], and the [`proptest!`] /
//! [`prop_assert!`] family of macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test stream (seeded from the test's module path and name), and
//! there is no shrinking — a failing case reports its inputs via the
//! assertion message and its case number, which is enough to reproduce it
//! by re-running the test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::Rng;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches upstream's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator driving a single test's cases.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Creates the stream for one `(test, case)` pair. FNV-1a over the
    /// test's full path keeps streams distinct across tests without any
    /// global state.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(SmallRng::seed(h ^ ((case as u64) << 1 | 1)))
    }

    fn rng(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.start..self.end)
    }
}

/// Collection sizes: either an exact `usize` or a `Range<usize>`.
pub trait SizeRange {
    /// Picks the size for one generated collection.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.rng().gen_range(self.start..self.end)
    }
}

/// Strategies for collections (`proptest::collection`).
pub mod collection {
    use super::*;

    /// Generates `Vec`s of `element` values with a size from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Generates `HashSet`s of `element` values with a size from `size`.
    ///
    /// Like upstream, the generated set reaches the drawn size exactly:
    /// duplicate draws are retried (bounded, then the test panics — that
    /// only happens when the element domain is smaller than the set).
    pub fn hash_set<S, Z>(element: S, size: Z) -> HashSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Hash + Eq,
        Z: SizeRange,
    {
        HashSetStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy returned by [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S, Z> Strategy for HashSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Hash + Eq,
        Z: SizeRange,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut set = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while set.len() < n {
                set.insert(self.element.sample(rng));
                attempts += 1;
                assert!(
                    attempts < 100 * (n + 1),
                    "hash_set strategy could not reach size {n}; element domain too small"
                );
            }
            set
        }
    }
}

/// Everything a property test needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// Fails the current case unless the two values compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}

/// Declares a block of property tests.
///
/// Supports an optional leading `#![proptest_config(expr)]` and any number
/// of `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut runner_rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $pat = $crate::Strategy::sample(&$strategy, &mut runner_rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            Ok(())
                        })();
                    if let Err(message) = outcome {
                        panic!("proptest case {case} failed: {message}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(v in 3usize..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&v));
            prop_assert!((-1.0..1.0).contains(&f), "f = {}", f);
        }

        #[test]
        fn prop_map_applies(v in (0u64..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(v < 20);
        }

        #[test]
        fn collections_respect_sizes(
            xs in collection::vec(0.0f64..1.0, 5),
            set in collection::hash_set(0usize..1000, 3..8),
        ) {
            prop_assert_eq!(xs.len(), 5);
            prop_assert!(set.len() >= 3 && set.len() < 8);
        }
    }

    #[test]
    fn streams_are_deterministic_per_case() {
        let strat = 0u64..1_000_000;
        let mut a = TestRng::for_case("t", 7);
        let mut b = TestRng::for_case("t", 7);
        let mut c = TestRng::for_case("t", 8);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        assert_ne!(strat.sample(&mut a), strat.sample(&mut c));
    }
}
