//! Vendored ChaCha-based random number generators.
//!
//! Implements the real ChaCha stream cipher (RFC 7539 quarter-round, 8
//! rounds for [`ChaCha8Rng`]) as an RNG for the vendored `rand` stub.
//! Deterministic per seed; not guaranteed bit-identical to the upstream
//! `rand_chacha` word stream (nothing in this workspace relies on that).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, seeded by a 256-bit key.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce fixed at zero: each seed is its own stream.
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.block = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn blocks_differ_across_counter() {
        // 17 words forces a second block; it must differ from the first.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
