//! Vendored, API-compatible micro-benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of the `criterion` 0.5 API the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up for
//! [`Criterion::WARMUP`] and then timed in batches until
//! [`Criterion::MEASURE`] has elapsed; the mean ns/iteration is printed in
//! a stable `bench: <name> ... <mean> ns/iter (<iters> iters)` format that
//! downstream tooling (the `BENCH_*.json` snapshots) parses. Set
//! `CRITERION_QUICK=1` to cut both windows by 10x for smoke runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

fn window(base_ms: u64) -> Duration {
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
    Duration::from_millis(if quick { base_ms / 10 } else { base_ms })
}

impl Criterion {
    /// Warm-up window per benchmark.
    pub const WARMUP: Duration = Duration::from_millis(300);
    /// Measurement window per benchmark.
    pub const MEASURE: Duration = Duration::from_millis(1000);

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        // Warm-up: run the body repeatedly without recording.
        let warmup_until = Instant::now() + window(Self::WARMUP.as_millis() as u64);
        while Instant::now() < warmup_until {
            bencher.reset();
            f(&mut bencher);
        }
        // Measurement: accumulate iterations and elapsed time.
        bencher.reset();
        let measure_until = Instant::now() + window(Self::MEASURE.as_millis() as u64);
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while Instant::now() < measure_until {
            bencher.reset();
            f(&mut bencher);
            iters += bencher.iters;
            elapsed += bencher.elapsed;
        }
        let mean_ns = if iters == 0 {
            f64::NAN
        } else {
            elapsed.as_nanos() as f64 / iters as f64
        };
        println!("bench: {name} ... {mean_ns:.1} ns/iter ({iters} iters)");
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// Measures the closure passed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn reset(&mut self) {
        self.iters = 0;
        self.elapsed = Duration::ZERO;
    }

    /// Times repeated executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // A small fixed batch keeps per-call timer overhead negligible
        // while letting the driver loop re-check the deadline.
        const BATCH: u64 = 16;
        let start = Instant::now();
        for _ in 0..BATCH {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }
}

/// A parameterized benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a bare parameter value.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    /// Creates an id from a function name and a parameter value.
    pub fn new<D: Display>(function: &str, parameter: D) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes measurement
    /// rounds by wall-clock time, not by a fixed sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark of the group with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_finite_mean() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_ids_compose() {
        let id = BenchmarkId::from_parameter(4);
        assert_eq!(id.label, "4");
        let id = BenchmarkId::new("f", 2);
        assert_eq!(id.label, "f/2");
    }
}
