//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of the `rand` 0.8 API it actually uses: [`RngCore`],
//! [`SeedableRng`] (with the SplitMix64-based `seed_from_u64`), the [`Rng`]
//! extension trait (`gen`, `gen_range`), and [`seq::SliceRandom::choose`].
//! Streams are deterministic for a given seed but are NOT guaranteed to be
//! bit-identical to upstream `rand`; nothing in this workspace depends on
//! upstream streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for every generator in this workspace).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 and instantiates
    /// the generator — the conventional convenience constructor.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step (public-domain constants).
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            for (b, out) in z.to_le_bytes().iter().zip(chunk.iter_mut()) {
                *out = *b;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from the "standard" distribution of their domain
/// (uniform over `[0,1)` for floats, uniform over all values for integers).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < 2^-40 for every span in this workspace
                // (spans are small); determinism is what matters here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Module alias matching `rand::rngs` for code that names it.
pub mod rngs {
    /// A tiny SplitMix64 generator, handy for tests.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SmallRng {
        /// Creates a generator from a seed.
        pub fn seed(state: u64) -> Self {
            SmallRng { state }
        }
    }

    impl super::RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = rngs::SmallRng::seed(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rngs::SmallRng::seed(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0..=4u64);
            assert!(w <= 4);
        }
    }

    #[test]
    fn choose_covers_all_elements() {
        use seq::SliceRandom;
        let mut rng = rngs::SmallRng::seed(3);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &v = items.choose(&mut rng).unwrap();
            seen[v - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        struct Collector([u8; 16]);
        impl SeedableRng for Collector {
            type Seed = [u8; 16];
            fn from_seed(seed: [u8; 16]) -> Self {
                Collector(seed)
            }
        }
        let a = Collector::seed_from_u64(42).0;
        let b = Collector::seed_from_u64(42).0;
        let c = Collector::seed_from_u64(43).0;
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
